// Allocation-free callable types for the simulator hot path.
//
// EventFn replaces std::function for simulator events and node queue items:
// move-only, with a small-buffer store sized so every closure on the
// packet-delivery path (network delivery, drain scheduling, timer firing)
// lives inline. Callables that outgrow the buffer still work — they fall
// back to the heap — but the hot-path closures are statically checked to
// fit (see the static_asserts at their construction sites).
//
// FunctionRef is the matching non-owning view for synchronous "call it now"
// parameters (ProcessingNode::run_task): one pointer plus one thunk, never
// an allocation, valid only for the duration of the call.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace neo::sim {

class EventFn {
  public:
    /// Inline capacity. Sized for the network delivery closure (this + two
    /// NodeIds + latency + a refcounted Packet) and the timer-fire closure
    /// (this + id + label + a std::function) with headroom.
    static constexpr std::size_t kInlineSize = 64;

    /// True when F runs from the inline buffer (no heap allocation).
    template <typename F>
    static constexpr bool fits_inline =
        sizeof(F) <= kInlineSize && alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    EventFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                          std::is_invocable_r_v<void, std::decay_t<F>&>>>
    EventFn(F&& f) {  // NOLINT(google-explicit-constructor): function-like type
        using Fn = std::decay_t<F>;
        if constexpr (fits_inline<Fn>) {
            ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
            vt_ = &inline_vtable<Fn>;
        } else {
            ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
            vt_ = &heap_vtable<Fn>;
        }
    }

    EventFn(EventFn&& o) noexcept {
        if (o.vt_ != nullptr) {
            o.vt_->relocate(o.buf_, buf_);
            vt_ = o.vt_;
            o.vt_ = nullptr;
        }
    }

    EventFn& operator=(EventFn&& o) noexcept {
        if (this != &o) {
            reset();
            if (o.vt_ != nullptr) {
                o.vt_->relocate(o.buf_, buf_);
                vt_ = o.vt_;
                o.vt_ = nullptr;
            }
        }
        return *this;
    }

    EventFn(const EventFn&) = delete;
    EventFn& operator=(const EventFn&) = delete;

    ~EventFn() { reset(); }

    explicit operator bool() const { return vt_ != nullptr; }

    void operator()() { vt_->call(buf_); }

    void reset() {
        if (vt_ != nullptr) {
            vt_->destroy(buf_);
            vt_ = nullptr;
        }
    }

  private:
    struct VTable {
        void (*call)(unsigned char*);
        void (*destroy)(unsigned char*);
        /// Move-constructs into `dst` and destroys the source (for inline
        /// storage; heap storage just moves the pointer).
        void (*relocate)(unsigned char* src, unsigned char* dst);
    };

    template <typename Fn>
    static constexpr VTable inline_vtable{
        [](unsigned char* b) { (*std::launder(reinterpret_cast<Fn*>(b)))(); },
        [](unsigned char* b) { std::launder(reinterpret_cast<Fn*>(b))->~Fn(); },
        [](unsigned char* src, unsigned char* dst) {
            Fn* s = std::launder(reinterpret_cast<Fn*>(src));
            ::new (static_cast<void*>(dst)) Fn(std::move(*s));
            s->~Fn();
        },
    };

    template <typename Fn>
    static constexpr VTable heap_vtable{
        [](unsigned char* b) { (**std::launder(reinterpret_cast<Fn**>(b)))(); },
        [](unsigned char* b) { delete *std::launder(reinterpret_cast<Fn**>(b)); },
        [](unsigned char* src, unsigned char* dst) {
            ::new (static_cast<void*>(dst)) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
        },
    };

    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    const VTable* vt_ = nullptr;
};

/// Non-owning callable reference (void() only). The referenced callable
/// must outlive the call — pass temporaries only as immediate arguments.
class FunctionRef {
  public:
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, FunctionRef> &&
                                          std::is_invocable_r_v<void, std::decay_t<F>&>>>
    FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
        : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
          call_([](void* obj) { (*static_cast<std::remove_reference_t<F>*>(obj))(); }) {}

    void operator()() const { call_(obj_); }

  private:
    void* obj_;
    void (*call_)(void*);
};

}  // namespace neo::sim
