#include "sim/network.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace neo::sim {

void Network::add_node(Node& node, NodeId id) {
    NEO_ASSERT_MSG(!nodes_.contains(id), "duplicate node id");
    NEO_ASSERT_MSG(node.net_ == nullptr, "node already attached");
    node.net_ = this;
    node.id_ = id;
    nodes_[id] = &node;
    // Memoize the node's partition under the current placement policy
    // (setup-time only; the table is immutable once workers run).
    sim_.bind_node(id);
    // Pre-build the sender stream so the map is never mutated from a worker
    // thread once the simulation runs.
    streams_.emplace(id, StreamRng(seed_, id));
}

StreamRng& Network::stream(NodeId from) {
    auto it = streams_.find(from);
    if (it == streams_.end()) it = streams_.emplace(from, StreamRng(seed_, from)).first;
    return it->second;
}

void Network::refresh_lookahead() {
    Time min_latency = default_link_.latency;
    for (const auto& [k, cfg] : link_overrides_) min_latency = std::min(min_latency, cfg.latency);
    sim_.set_lookahead(min_latency);
}

void Network::set_link(NodeId from, NodeId to, const LinkConfig& cfg) {
    link_overrides_[key(from, to)] = cfg;
    refresh_lookahead();
}

const LinkConfig& Network::link(NodeId from, NodeId to) const {
    auto it = link_overrides_.find(key(from, to));
    return it != link_overrides_.end() ? it->second : default_link_;
}

void Network::set_node_down(NodeId id, bool down) {
    if (down) {
        down_.insert(id);
    } else {
        down_.erase(id);
    }
}

std::uint64_t Network::delivered_to(NodeId id) const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
        auto it = s.delivered_to.find(id);
        if (it != s.delivered_to.end()) total += it->second;
    }
    return total;
}

void Network::reset_counters() {
    for (auto& s : shards_) s = Shard{};
}

Time Network::total_cpu_busy() const {
    Time total = 0;
    for (const auto& [id, node] : nodes_) total += node->cpu_busy_time();
    return total;
}

Time Network::total_queue_wait() const {
    Time total = 0;
    for (const auto& [id, node] : nodes_) total += node->cpu_queue_wait();
    return total;
}

void Network::count_drop(obs::DropReason reason, Time t, NodeId from, NodeId to,
                         std::size_t bytes) {
    Shard& s = shard();
    ++s.packets_dropped;
    ++s.drops_by_reason[static_cast<std::size_t>(reason)];
    if (obs::TraceSink* tr = sim_.trace()) tr->packet_drop(t, from, to, bytes, reason);
}

void Network::register_metrics(obs::Registry& reg, const std::string& prefix) {
    reg.add_collector([this, prefix](obs::Registry& r) {
        r.set_value(prefix + ".packets_sent", static_cast<double>(packets_sent()));
        r.set_value(prefix + ".packets_delivered", static_cast<double>(packets_delivered()));
        r.set_value(prefix + ".packets_dropped", static_cast<double>(packets_dropped()));
        r.set_value(prefix + ".bytes_sent", static_cast<double>(bytes_sent()));
        r.set_value(prefix + ".transit_time_ns", static_cast<double>(transit_time()));
        for (std::size_t i = 0; i < static_cast<std::size_t>(obs::DropReason::kCount_); ++i) {
            std::uint64_t n = dropped_for(static_cast<obs::DropReason>(i));
            if (n == 0) continue;
            r.set_value(prefix + ".drops." +
                            obs::drop_reason_name(static_cast<obs::DropReason>(i)),
                        static_cast<double>(n));
        }
        if (std::uint64_t n = tamper_mutations(); n != 0) {
            r.set_value(prefix + ".tamper.mutations", static_cast<double>(n));
        }
        // Merge the per-shard delivered-to maps and dump keys in sorted
        // order via a reused scratch vector (no ordered map rebuild per
        // dump).
        delivered_scratch_.clear();
        for (const auto& s : shards_) {
            for (const auto& [node, count] : s.delivered_to) {
                delivered_scratch_.emplace_back(node, count);
            }
        }
        std::sort(delivered_scratch_.begin(), delivered_scratch_.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        // Same destination may appear in several shards: fold runs of equal
        // keys while emitting.
        for (std::size_t i = 0; i < delivered_scratch_.size();) {
            NodeId node = delivered_scratch_[i].first;
            std::uint64_t count = 0;
            for (; i < delivered_scratch_.size() && delivered_scratch_[i].first == node; ++i) {
                count += delivered_scratch_[i].second;
            }
            r.set_value(prefix + ".delivered_to." + std::to_string(node),
                        static_cast<double>(count));
        }
    });
}

void Network::send_at(Time depart, NodeId from, NodeId to, Packet data) {
    NEO_ASSERT(depart >= sim_.now());
    {
        Shard& s = shard();
        ++s.packets_sent;
        s.bytes_sent += data.size();
    }

    if (is_down(from)) {
        count_drop(obs::DropReason::kSenderDown, depart, from, to, data.size());
        return;
    }
    if (is_blocked(from, to)) {
        count_drop(obs::DropReason::kPartitioned, depart, from, to, data.size());
        return;
    }

    // All randomness below comes from the sender's private counter-based
    // stream, in a fixed per-packet draw order (drop gate, then jitter):
    // the values depend only on this sender's send history, not on global
    // event interleaving or thread count.
    StreamRng& rng = stream(from);

    const LinkConfig& cfg = link(from, to);
    double effective_drop = cfg.drop_rate + global_drop_rate_;
    if (effective_drop > 0.0 && rng.chance(effective_drop)) {
        count_drop(obs::DropReason::kLinkLoss, depart, from, to, data.size());
        return;
    }

    if (tamper_) {
        // Copy-on-write: the tamper hook mutates a private copy so the
        // other receivers of a shared multicast buffer are unaffected.
        Bytes mutated(data.view().begin(), data.view().end());
        if (tamper_(from, to, mutated) == TamperAction::kDrop) {
            count_drop(obs::DropReason::kTampered, depart, from, to, mutated.size());
            return;
        }
        // Attribute actual mutations (the clone may come back unchanged —
        // most hooks target one link): counter + structured trace event,
        // identical on the serial and PDES paths. Untouched clones keep the
        // original shared buffer.
        bool changed = mutated.size() != data.size() ||
                       !std::equal(mutated.begin(), mutated.end(), data.view().begin());
        if (changed) {
            ++shard().tamper_mutations;
            if (obs::TraceSink* tr = sim_.trace()) {
                tr->tamper_mutate(depart, from, to, mutated.size());
            }
            data = Packet(std::move(mutated));
        }
    }

    if (obs::TraceSink* tr = sim_.trace()) tr->packet_send(depart, from, to, data.size());

    Time latency = cfg.latency;
    if (cfg.jitter > 0) latency += static_cast<Time>(rng.uniform(static_cast<std::uint64_t>(cfg.jitter)));
    latency += static_cast<Time>(cfg.ns_per_byte * static_cast<double>(data.size()));

    auto deliver = [this, from, to, latency, data = std::move(data)]() {
        auto it = nodes_.find(to);
        if (it == nodes_.end()) {
            count_drop(obs::DropReason::kNoRoute, sim_.now(), from, to, data.size());
            return;
        }
        if (is_down(to)) {
            count_drop(obs::DropReason::kReceiverDown, sim_.now(), from, to, data.size());
            return;
        }
        Shard& s = shard();
        ++s.packets_delivered;
        ++s.delivered_to[to];
        s.transit_time += latency;
        if (obs::TraceSink* tr = sim_.trace()) {
            tr->packet_deliver(sim_.now(), from, to, data.size());
        }
        it->second->on_packet(from, data);
    };
    // The whole point of the EventFn small-buffer store: a delivery event
    // must never allocate. If this closure grows past the inline capacity,
    // shrink it (or grow EventFn::kInlineSize) rather than silently
    // spilling to the heap.
    static_assert(EventFn::fits_inline<decltype(deliver)>,
                  "packet-delivery closure must fit EventFn's inline buffer");
    // Executes on the receiver's partition; latency >= cfg.latency >= the
    // simulator lookahead, so the conservative contract holds for every
    // cross-partition delivery.
    sim_.at_node(depart + latency, to, std::move(deliver));
}

}  // namespace neo::sim
