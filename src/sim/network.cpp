#include "sim/network.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace neo::sim {

void Network::add_node(Node& node, NodeId id) {
    NEO_ASSERT_MSG(!nodes_.contains(id), "duplicate node id");
    NEO_ASSERT_MSG(node.net_ == nullptr, "node already attached");
    node.net_ = this;
    node.id_ = id;
    nodes_[id] = &node;
}

void Network::set_link(NodeId from, NodeId to, const LinkConfig& cfg) {
    link_overrides_[key(from, to)] = cfg;
}

const LinkConfig& Network::link(NodeId from, NodeId to) const {
    auto it = link_overrides_.find(key(from, to));
    return it != link_overrides_.end() ? it->second : default_link_;
}

void Network::set_node_down(NodeId id, bool down) {
    if (down) {
        down_.insert(id);
    } else {
        down_.erase(id);
    }
}

std::uint64_t Network::delivered_to(NodeId id) const {
    auto it = delivered_to_.find(id);
    return it != delivered_to_.end() ? it->second : 0;
}

void Network::reset_counters() {
    packets_sent_ = packets_delivered_ = packets_dropped_ = bytes_sent_ = 0;
    transit_time_ = 0;
    drops_by_reason_.fill(0);
    delivered_to_.clear();
}

Time Network::total_cpu_busy() const {
    Time total = 0;
    for (const auto& [id, node] : nodes_) total += node->cpu_busy_time();
    return total;
}

Time Network::total_queue_wait() const {
    Time total = 0;
    for (const auto& [id, node] : nodes_) total += node->cpu_queue_wait();
    return total;
}

void Network::count_drop(obs::DropReason reason, Time t, NodeId from, NodeId to,
                         std::size_t bytes) {
    ++packets_dropped_;
    ++drops_by_reason_[static_cast<std::size_t>(reason)];
    if (obs::TraceSink* tr = sim_.trace()) tr->packet_drop(t, from, to, bytes, reason);
}

void Network::register_metrics(obs::Registry& reg, const std::string& prefix) {
    reg.add_collector([this, prefix](obs::Registry& r) {
        r.set_value(prefix + ".packets_sent", static_cast<double>(packets_sent_));
        r.set_value(prefix + ".packets_delivered", static_cast<double>(packets_delivered_));
        r.set_value(prefix + ".packets_dropped", static_cast<double>(packets_dropped_));
        r.set_value(prefix + ".bytes_sent", static_cast<double>(bytes_sent_));
        r.set_value(prefix + ".transit_time_ns", static_cast<double>(transit_time_));
        for (std::size_t i = 0; i < drops_by_reason_.size(); ++i) {
            if (drops_by_reason_[i] == 0) continue;
            r.set_value(prefix + ".drops." +
                            obs::drop_reason_name(static_cast<obs::DropReason>(i)),
                        static_cast<double>(drops_by_reason_[i]));
        }
        // Dump keys in sorted order via a reused scratch vector (no ordered
        // map rebuild per dump).
        delivered_scratch_.assign(delivered_to_.begin(), delivered_to_.end());
        std::sort(delivered_scratch_.begin(), delivered_scratch_.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (const auto& [node, count] : delivered_scratch_) {
            r.set_value(prefix + ".delivered_to." + std::to_string(node),
                        static_cast<double>(count));
        }
    });
}

void Network::send_at(Time depart, NodeId from, NodeId to, Packet data) {
    NEO_ASSERT(depart >= sim_.now());
    ++packets_sent_;
    bytes_sent_ += data.size();

    if (is_down(from)) {
        count_drop(obs::DropReason::kSenderDown, depart, from, to, data.size());
        return;
    }
    if (is_blocked(from, to)) {
        count_drop(obs::DropReason::kPartitioned, depart, from, to, data.size());
        return;
    }

    const LinkConfig& cfg = link(from, to);
    double effective_drop = cfg.drop_rate + global_drop_rate_;
    if (effective_drop > 0.0 && rng_.chance(effective_drop)) {
        count_drop(obs::DropReason::kLinkLoss, depart, from, to, data.size());
        return;
    }

    if (tamper_) {
        // Copy-on-write: the tamper hook mutates a private copy so the
        // other receivers of a shared multicast buffer are unaffected.
        Bytes mutated(data.view().begin(), data.view().end());
        if (tamper_(from, to, mutated) == TamperAction::kDrop) {
            count_drop(obs::DropReason::kTampered, depart, from, to, mutated.size());
            return;
        }
        data = Packet(std::move(mutated));
    }

    if (obs::TraceSink* tr = sim_.trace()) tr->packet_send(depart, from, to, data.size());

    Time latency = cfg.latency;
    if (cfg.jitter > 0) latency += static_cast<Time>(rng_.uniform(static_cast<std::uint64_t>(cfg.jitter)));
    latency += static_cast<Time>(cfg.ns_per_byte * static_cast<double>(data.size()));

    auto deliver = [this, from, to, latency, data = std::move(data)]() {
        auto it = nodes_.find(to);
        if (it == nodes_.end()) {
            count_drop(obs::DropReason::kNoRoute, sim_.now(), from, to, data.size());
            return;
        }
        if (is_down(to)) {
            count_drop(obs::DropReason::kReceiverDown, sim_.now(), from, to, data.size());
            return;
        }
        ++packets_delivered_;
        ++delivered_to_[to];
        transit_time_ += latency;
        if (obs::TraceSink* tr = sim_.trace()) {
            tr->packet_deliver(sim_.now(), from, to, data.size());
        }
        it->second->on_packet(from, data);
    };
    // The whole point of the EventFn small-buffer store: a delivery event
    // must never allocate. If this closure grows past the inline capacity,
    // shrink it (or grow EventFn::kInlineSize) rather than silently
    // spilling to the heap.
    static_assert(EventFn::fits_inline<decltype(deliver)>,
                  "packet-delivery closure must fit EventFn's inline buffer");
    sim_.at(depart + latency, std::move(deliver));
}

}  // namespace neo::sim
