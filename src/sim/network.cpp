#include "sim/network.hpp"

#include "common/assert.hpp"

namespace neo::sim {

void Network::add_node(Node& node, NodeId id) {
    NEO_ASSERT_MSG(!nodes_.contains(id), "duplicate node id");
    NEO_ASSERT_MSG(node.net_ == nullptr, "node already attached");
    node.net_ = this;
    node.id_ = id;
    nodes_[id] = &node;
}

void Network::set_link(NodeId from, NodeId to, const LinkConfig& cfg) {
    link_overrides_[key(from, to)] = cfg;
}

const LinkConfig& Network::link(NodeId from, NodeId to) const {
    auto it = link_overrides_.find(key(from, to));
    return it != link_overrides_.end() ? it->second : default_link_;
}

void Network::set_node_down(NodeId id, bool down) {
    if (down) {
        down_.insert(id);
    } else {
        down_.erase(id);
    }
}

std::uint64_t Network::delivered_to(NodeId id) const {
    auto it = delivered_to_.find(id);
    return it != delivered_to_.end() ? it->second : 0;
}

void Network::reset_counters() {
    packets_sent_ = packets_delivered_ = packets_dropped_ = bytes_sent_ = 0;
    delivered_to_.clear();
}

void Network::send_at(Time depart, NodeId from, NodeId to, Bytes data) {
    NEO_ASSERT(depart >= sim_.now());
    ++packets_sent_;
    bytes_sent_ += data.size();

    if (is_down(from) || is_blocked(from, to)) {
        ++packets_dropped_;
        return;
    }

    const LinkConfig& cfg = link(from, to);
    double effective_drop = cfg.drop_rate + global_drop_rate_;
    if (effective_drop > 0.0 && rng_.chance(effective_drop)) {
        ++packets_dropped_;
        return;
    }

    if (tamper_) {
        if (tamper_(from, to, data) == TamperAction::kDrop) {
            ++packets_dropped_;
            return;
        }
    }

    Time latency = cfg.latency;
    if (cfg.jitter > 0) latency += static_cast<Time>(rng_.uniform(static_cast<std::uint64_t>(cfg.jitter)));
    latency += static_cast<Time>(cfg.ns_per_byte * static_cast<double>(data.size()));

    sim_.at(depart + latency, [this, from, to, data = std::move(data)]() {
        auto it = nodes_.find(to);
        if (it == nodes_.end() || is_down(to)) {
            ++packets_dropped_;
            return;
        }
        ++packets_delivered_;
        ++delivered_to_[to];
        it->second->on_packet(from, data);
    });
}

}  // namespace neo::sim
