// Simulated data-center network: nodes, links, loss, partitions, tampering.
//
// Replaces the paper's 100 Gbps testbed fabric (see DESIGN.md §1). Latency,
// jitter and drops are applied per packet from a counter-based per-SENDER
// RNG stream derived from (seed, sender id) — never from a shared global
// stream — so the draw sequence each packet sees is a pure function of the
// sender's own send order, independent of how nodes interleave across
// partitions. This is what keeps simulated results identical between
// --sim-threads 1 and --sim-threads N.
//
// Instrumentation counters are sharded per partition (plus one shard for
// global-context sends): each increment lands in the executing partition's
// shard without locks, and which shard that is is itself deterministic, so
// aggregate AND per-shard sums are reproducible. Deliveries are scheduled
// with Simulator::at_node(to, ...) and execute on the receiver's partition.
//
// The network also maintains the simulator's conservative lookahead as the
// minimum configured link latency (see simulator.hpp).
//
// Packets are refcounted immutable buffers (sim/packet.hpp): a multicast
// fan-out hands every destination the same buffer, and delivery closures
// carry the refcount — not a copy — through the event queue and across
// partition mailboxes.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/trace.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace neo::obs {
class Registry;
}

namespace neo::sim {

struct LinkConfig {
    /// One-way propagation + switching latency.
    Time latency = 5 * kMicrosecond;
    /// Uniform random addition in [0, jitter).
    Time jitter = 2 * kMicrosecond;
    /// Probability a packet is silently lost.
    double drop_rate = 0.0;
    /// Serialisation delay per byte (0.08 ns/B == 100 Gbps).
    double ns_per_byte = 0.08;
};

class Node;

enum class TamperAction { kDeliver, kDrop };

/// Inspects/mutates packets in flight; used by Byzantine-network tests.
/// Runs on a private mutable copy of the shared packet buffer (copy-on-
/// write), so tampering one delivery never corrupts the other receivers'
/// view of a multicast.
using TamperFn = std::function<TamperAction(NodeId from, NodeId to, Bytes& data)>;

class Network {
  public:
    Network(Simulator& sim, std::uint64_t seed)
        : sim_(sim), seed_(seed), shards_(sim.partitions() + 1) {
        refresh_lookahead();
    }

    Simulator& simulator() { return sim_; }

    /// Registers a node under `id` and attaches it to this network.
    void add_node(Node& node, NodeId id);

    /// Link configuration may only change from setup code or a global
    /// event (never inside a node's event): it feeds the simulator's
    /// lookahead, which must stay constant within a parallel window.
    void set_default_link(const LinkConfig& cfg) {
        default_link_ = cfg;
        refresh_lookahead();
    }
    const LinkConfig& default_link() const { return default_link_; }
    /// Directional per-pair override.
    void set_link(NodeId from, NodeId to, const LinkConfig& cfg);
    const LinkConfig& link(NodeId from, NodeId to) const;

    /// Applies an additional drop probability to every link (Fig 9's
    /// "simulated drop rate" knob).
    void set_global_drop_rate(double rate) { global_drop_rate_ = rate; }
    double global_drop_rate() const { return global_drop_rate_; }

    /// Partitions: blocked directional pairs deliver nothing.
    void block(NodeId from, NodeId to) { blocked_.insert(key(from, to)); }
    void unblock(NodeId from, NodeId to) { blocked_.erase(key(from, to)); }
    bool is_blocked(NodeId from, NodeId to) const { return blocked_.contains(key(from, to)); }

    /// A down node neither sends nor receives (crash model).
    void set_node_down(NodeId id, bool down);
    bool is_down(NodeId id) const { return down_.contains(id); }

    void set_tamper(TamperFn fn) { tamper_ = std::move(fn); }

    /// Transmits at the current simulation time.
    void send(NodeId from, NodeId to, Packet data) {
        send_at(sim_.now(), from, to, std::move(data));
    }

    /// Transmits with the given departure timestamp (>= now). The packet
    /// buffer is shared, not copied — callers multicast by passing the same
    /// Packet for every destination.
    void send_at(Time depart, NodeId from, NodeId to, Packet data);

    // Instrumentation. Getters aggregate the per-partition shards; call
    // them from setup code, global events, or after a run (not from node
    // events racing with other partitions).
    std::uint64_t packets_sent() const { return sum(&Shard::packets_sent); }
    std::uint64_t packets_delivered() const { return sum(&Shard::packets_delivered); }
    std::uint64_t packets_dropped() const { return sum(&Shard::packets_dropped); }
    std::uint64_t bytes_sent() const { return sum(&Shard::bytes_sent); }
    /// Packets the Byzantine tamper hook rewrote but let through (the
    /// dropped ones count under DropReason::kTampered instead).
    std::uint64_t tamper_mutations() const { return sum(&Shard::tamper_mutations); }

    /// Drop attribution: why each dropped packet was lost.
    std::uint64_t dropped_for(obs::DropReason reason) const {
        std::uint64_t total = 0;
        for (const auto& s : shards_) total += s.drops_by_reason[static_cast<std::size_t>(reason)];
        return total;
    }
    /// Total virtual time delivered packets spent in flight (latency +
    /// jitter + serialisation); the "network" share of end-to-end latency.
    Time transit_time() const {
        Time total = 0;
        for (const auto& s : shards_) total += s.transit_time;
        return total;
    }
    /// Aggregate CPU busy time across attached nodes (CPU-model share).
    Time total_cpu_busy() const;
    /// Aggregate arrival-queue wait across attached nodes (queueing share).
    Time total_queue_wait() const;

    /// Per-destination delivered-message counter (Table 1 bottleneck
    /// message counting).
    std::uint64_t delivered_to(NodeId id) const;
    void reset_counters();

    /// Publishes packet/byte/drop-reason counters (and per-destination
    /// delivered counts) under `prefix` at every registry dump.
    void register_metrics(obs::Registry& reg, const std::string& prefix);

  private:
    static std::uint64_t key(NodeId from, NodeId to) {
        return (static_cast<std::uint64_t>(from) << 32) | to;
    }

    /// One partition's slice of the counters (index = executing partition;
    /// the last shard belongs to global-context sends). 64-byte aligned so
    /// partitions never false-share a cache line.
    struct alignas(64) Shard {
        std::uint64_t packets_sent = 0;
        std::uint64_t packets_delivered = 0;
        std::uint64_t packets_dropped = 0;
        std::uint64_t bytes_sent = 0;
        std::uint64_t tamper_mutations = 0;
        Time transit_time = 0;
        std::array<std::uint64_t, static_cast<std::size_t>(obs::DropReason::kCount_)>
            drops_by_reason{};
        std::unordered_map<NodeId, std::uint64_t> delivered_to;
    };

    Shard& shard() { return shards_[sim_.current_shard()]; }
    std::uint64_t sum(std::uint64_t Shard::* field) const {
        std::uint64_t total = 0;
        for (const auto& s : shards_) total += s.*field;
        return total;
    }

    /// The per-sender deterministic stream. Senders are pre-registered by
    /// add_node; sends from ids that were never attached (test scaffolding)
    /// fall back to a lazy insert, which is only safe from setup code or a
    /// global event — never from a node event on a worker thread.
    StreamRng& stream(NodeId from);

    void refresh_lookahead();
    void count_drop(obs::DropReason reason, Time t, NodeId from, NodeId to, std::size_t bytes);

    Simulator& sim_;
    std::uint64_t seed_;
    LinkConfig default_link_;
    std::map<std::uint64_t, LinkConfig> link_overrides_;
    std::unordered_map<NodeId, Node*> nodes_;
    std::unordered_map<NodeId, StreamRng> streams_;
    std::unordered_set<std::uint64_t> blocked_;
    std::unordered_set<NodeId> down_;
    TamperFn tamper_;
    double global_drop_rate_ = 0.0;

    std::vector<Shard> shards_;
    /// Scratch reused by register_metrics' collector so a registry dump
    /// sorts the merged delivered-to counts without rebuilding an ordered
    /// map each time.
    std::vector<std::pair<NodeId, std::uint64_t>> delivered_scratch_;
};

/// Base class for all simulated endpoints.
class Node {
  public:
    virtual ~Node() = default;

    NodeId id() const { return id_; }
    Network& net() { return *net_; }
    Simulator& sim() { return net_->simulator(); }
    bool attached() const { return net_ != nullptr; }

    /// Raw packet delivery; called by the network at arrival time. The
    /// packet buffer is shared — keep a Packet copy (refcount bump) to
    /// retain the bytes beyond the call, never a deep copy.
    virtual void on_packet(NodeId from, const Packet& pkt) = 0;

    /// CPU-model accounting, aggregated by Network::total_cpu_busy /
    /// total_queue_wait for the bench harness's latency breakdown. Nodes
    /// without a CPU model (e.g. the sequencer switch pipeline) report 0.
    virtual Time cpu_busy_time() const { return 0; }
    virtual Time cpu_queue_wait() const { return 0; }

  private:
    friend class Network;
    Network* net_ = nullptr;
    NodeId id_ = kInvalidNode;
};

}  // namespace neo::sim
