// Refcounted immutable wire packet.
//
// A Packet is the unit the simulated network moves around: an immutable
// byte buffer shared by reference count. A multicast fan-out serialises its
// payload once and every per-destination delivery — including the arrival
// queue of a busy ProcessingNode — holds the same buffer, so the host-side
// cost of an N-way broadcast is O(1) allocations instead of O(N) copies.
// Immutability is what makes the sharing safe: tampering (Byzantine network
// tests) operates on a private mutable copy (see Network::send_at).
#pragma once

#include <memory>
#include <utility>

#include "common/bytes.hpp"

namespace neo::sim {

class Packet {
  public:
    /// Empty packet (no buffer). view() is an empty span.
    Packet() = default;

    /// Wraps an owned buffer; the Bytes' heap storage is adopted, not
    /// copied (one control-block allocation, zero byte copies). Implicit on
    /// purpose: `send_to(to, msg.serialize())` should stay natural.
    Packet(Bytes&& data) : buf_(std::make_shared<const Bytes>(std::move(data))) {}

    /// Copies an lvalue buffer into a fresh shared buffer. Prefer building
    /// the Packet once and passing it around when a buffer is reused.
    Packet(const Bytes& data) : buf_(std::make_shared<const Bytes>(data)) {}

    /// Explicit copy from a non-owning view.
    static Packet copy_of(BytesView data) { return Packet(Bytes(data.begin(), data.end())); }

    BytesView view() const { return buf_ ? BytesView(*buf_) : BytesView(); }
    std::size_t size() const { return buf_ ? buf_->size() : 0; }
    bool empty() const { return size() == 0; }

    /// Number of Packet handles sharing this buffer (instrumentation/tests).
    long use_count() const { return buf_.use_count(); }

  private:
    std::shared_ptr<const Bytes> buf_;
};

}  // namespace neo::sim
