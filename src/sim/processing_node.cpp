#include "sim/processing_node.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace neo::sim {

void ProcessingNode::on_packet(NodeId from, const Packet& pkt) {
    BytesView data = pkt.view();
    ++rx_by_kind_[data.empty() ? 0 : data[0]];
    // Refcount bump only — the arrival queue shares the sender's buffer.
    queue_.push_back(QueuedItem{from, pkt, {}, 0, sim().now(), ""});
    maybe_schedule_drain();
}

void ProcessingNode::register_rx_metrics(obs::Registry& reg, const std::string& prefix,
                                         KindNameFn name_fn) {
    reg.add_collector([this, prefix, name_fn](obs::Registry& r) {
        for (std::size_t kind = 0; kind < rx_by_kind_.size(); ++kind) {
            if (rx_by_kind_[kind] == 0) continue;
            const char* name = name_fn ? name_fn(static_cast<std::uint8_t>(kind)) : nullptr;
            std::string key;
            if (name != nullptr) {
                key = prefix + ".rx." + name;
            } else {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "0x%02zx", kind);
                key = prefix + ".rx." + buf;
            }
            r.set_value(key, static_cast<double>(rx_by_kind_[kind]));
        }
    });
}

void ProcessingNode::maybe_schedule_drain() {
    if (drain_scheduled_ || queue_.empty()) return;
    drain_scheduled_ = true;
    Time start = std::max(sim().now(), busy_until_);
    // Owner-routed: the drain must execute on this node's partition.
    sim().at_node(start, id(), [this] { drain_one(); });
}

void ProcessingNode::drain_one() {
    NEO_ASSERT(!queue_.empty());
    QueuedItem item = std::move(queue_.front());
    queue_.pop_front();
    drain_scheduled_ = false;

    if (item.task) {
        if (cancelled_timers_.erase(item.timer_id) == 0) {
            total_queue_wait_ += sim().now() - item.enqueued_at;
            run_task(cfg_.timer_overhead_ns, item.task, item.label);
        }
    } else {
        ++messages_handled_;
        total_queue_wait_ += sim().now() - item.enqueued_at;
        Time recv_cost = cfg_.recv_overhead_ns +
                         static_cast<Time>(cfg_.io_ns_per_byte *
                                           static_cast<double>(item.packet.size()));
        run_task(recv_cost, [&] { handle(item.from, item.packet.view()); }, "handle");
    }

    maybe_schedule_drain();
}

void ProcessingNode::run_task(Time fixed_cost, FunctionRef work, const char* label) {
    NEO_ASSERT_MSG(!in_task_, "nested task execution");
    in_task_ = true;
    out_.clear();
    extra_sync_ = 0;

    work();

    Time sync = fixed_cost + extra_sync_;
    Time async = 0;
    Time sync_crypto = 0;
    if (meter_ != nullptr) {
        sync_crypto = meter_->drain();
        sync += sync_crypto;
        async += meter_->drain_async(cfg_.crypto_parallelism);
    }
    for (const auto& send : out_) {
        sync += cfg_.send_overhead_ns +
                static_cast<Time>(cfg_.io_ns_per_byte * static_cast<double>(send.data.size()));
    }

    Time start = sim().now();
    busy_until_ = start + sync;
    total_busy_ += sync;

    if (obs::TraceSink* tr = sim().trace()) {
        tr->cpu_span(start, id(), label, sync);
        if (sync_crypto > 0) tr->crypto_cost(start, id(), "sync", sync_crypto);
        if (async > 0) tr->crypto_cost(start, id(), "async", async);
    }

    Time depart = busy_until_ + async;
    for (auto& send : out_) {
        net().send_at(depart, id(), send.to, std::move(send.data));
    }
    out_.clear();
    in_task_ = false;
}

void ProcessingNode::send_to(NodeId to, Packet data) {
    if (in_task_) {
        out_.push_back(PendingSend{to, std::move(data)});
    } else {
        // Outside a task (e.g. initialisation code): send immediately.
        net().send_at(sim().now(), id(), to, std::move(data));
    }
}

void ProcessingNode::broadcast(const std::vector<NodeId>& dests, const Packet& data) {
    for (NodeId d : dests) send_to(d, data);
}

ProcessingNode::TimerId ProcessingNode::set_timer(Time delay, std::function<void()> fn,
                                                  const char* label) {
    TimerId tid = next_timer_++;
    if (obs::TraceSink* tr = sim().trace()) tr->timer_arm(sim().now(), id(), tid, label, delay);
    auto fire = [this, tid, label, fn = std::move(fn)]() mutable {
        if (net().is_down(id()) || tid < min_valid_timer_) {
            cancelled_timers_.erase(tid);
            return;
        }
        if (obs::TraceSink* tr = sim().trace()) {
            // Cancelled timers still pass through the queue (drain_one
            // suppresses them) so the simulator's event structure is
            // independent of cancellation; only the trace skips them.
            if (!cancelled_timers_.contains(tid)) tr->timer_fire(sim().now(), id(), tid, label);
        }
        // Timer work contends for the same CPU as message handling: enqueue
        // it behind whatever the node is currently processing.
        queue_.push_back(QueuedItem{kInvalidNode, {}, std::move(fn), tid, sim().now(), label});
        maybe_schedule_drain();
    };
    static_assert(EventFn::fits_inline<decltype(fire)>,
                  "timer-fire closure must fit EventFn's inline buffer");
    sim().at_node(sim().now() + delay, id(), std::move(fire));
    return tid;
}

void ProcessingNode::cancel_timer(TimerId id) {
    cancelled_timers_.insert(id);
    if (obs::TraceSink* tr = sim().trace()) {
        tr->timer_cancel(sim().now(), this->id(), id);
    }
}

}  // namespace neo::sim
