#include "sim/processing_node.hpp"

#include "common/assert.hpp"

namespace neo::sim {

void ProcessingNode::on_packet(NodeId from, BytesView data) {
    queue_.push_back(QueuedItem{from, Bytes(data.begin(), data.end()), nullptr, 0});
    maybe_schedule_drain();
}

void ProcessingNode::maybe_schedule_drain() {
    if (drain_scheduled_ || queue_.empty()) return;
    drain_scheduled_ = true;
    Time start = std::max(sim().now(), busy_until_);
    sim().at(start, [this] { drain_one(); });
}

void ProcessingNode::drain_one() {
    NEO_ASSERT(!queue_.empty());
    QueuedItem item = std::move(queue_.front());
    queue_.pop_front();
    drain_scheduled_ = false;

    if (item.task) {
        if (cancelled_timers_.erase(item.timer_id) == 0) {
            run_task(cfg_.timer_overhead_ns, item.task);
        }
    } else {
        ++messages_handled_;
        Time recv_cost = cfg_.recv_overhead_ns +
                         static_cast<Time>(cfg_.io_ns_per_byte *
                                           static_cast<double>(item.data.size()));
        run_task(recv_cost, [&] { handle(item.from, item.data); });
    }

    maybe_schedule_drain();
}

void ProcessingNode::run_task(Time fixed_cost, const std::function<void()>& work) {
    NEO_ASSERT_MSG(!in_task_, "nested task execution");
    in_task_ = true;
    out_.clear();
    extra_sync_ = 0;

    work();

    Time sync = fixed_cost + extra_sync_;
    Time async = 0;
    if (meter_ != nullptr) {
        sync += meter_->drain();
        async += meter_->drain_async(cfg_.crypto_parallelism);
    }
    for (const auto& send : out_) {
        sync += cfg_.send_overhead_ns +
                static_cast<Time>(cfg_.io_ns_per_byte * static_cast<double>(send.data.size()));
    }

    Time start = sim().now();
    busy_until_ = start + sync;
    total_busy_ += sync;

    Time depart = busy_until_ + async;
    for (auto& send : out_) {
        net().send_at(depart, id(), send.to, std::move(send.data));
    }
    out_.clear();
    in_task_ = false;
}

void ProcessingNode::send_to(NodeId to, Bytes data) {
    if (in_task_) {
        out_.push_back(PendingSend{to, std::move(data)});
    } else {
        // Outside a task (e.g. initialisation code): send immediately.
        net().send_at(sim().now(), id(), to, std::move(data));
    }
}

void ProcessingNode::broadcast(const std::vector<NodeId>& dests, const Bytes& data) {
    for (NodeId d : dests) send_to(d, data);
}

ProcessingNode::TimerId ProcessingNode::set_timer(Time delay, std::function<void()> fn) {
    TimerId tid = next_timer_++;
    sim().after(delay, [this, tid, fn = std::move(fn)] {
        if (net().is_down(id())) {
            cancelled_timers_.erase(tid);
            return;
        }
        // Timer work contends for the same CPU as message handling: enqueue
        // it behind whatever the node is currently processing.
        queue_.push_back(QueuedItem{kInvalidNode, {}, fn, tid});
        maybe_schedule_drain();
    });
    return tid;
}

}  // namespace neo::sim
