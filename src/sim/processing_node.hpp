// Serial-CPU endpoint model.
//
// A ProcessingNode handles one message at a time: arrivals queue, the
// handler runs when the CPU frees up, and the handler's cost (fixed
// per-message overhead + metered synchronous crypto) extends the node's busy
// time. Outbound messages produced by a handler depart when processing
// completes (plus any asynchronous crypto latency — work offloaded to the
// machine's worker cores, which delays the result without serialising the
// protocol thread).
//
// This is the mechanism that turns Table 1's "bottleneck complexity" into
// the throughput saturation and queuing-delay knees of Fig 7.
//
// Host-efficiency notes: arrivals are queued as refcounted Packets (no
// per-arrival byte copy), broadcast shares one buffer across every
// destination, and timer tasks ride in EventFns so the queue never
// heap-allocates for small callables.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "crypto/cost.hpp"
#include "sim/event.hpp"
#include "sim/network.hpp"

namespace neo::obs {
class Registry;
}

namespace neo::sim {

struct ProcessingConfig {
    /// Fixed cost to receive + parse + dispatch one message.
    Time recv_overhead_ns = 1'200;
    /// Fixed cost per outbound unicast transmission.
    Time send_overhead_ns = 700;
    /// Size-dependent host I/O cost (copies, NIC descriptors): applied per
    /// byte sent and received. Large batched protocol messages pay this;
    /// it is the mechanism behind the paper's "reduced batching efficiency"
    /// with bigger requests (§6.5).
    double io_ns_per_byte = 0.3;
    /// Fixed cost to run a timer callback.
    Time timer_overhead_ns = 300;
    /// Worker cores available for asynchronous crypto (the testbed replicas
    /// are 32-core machines; a task's batched signature work overlaps
    /// across this pool — see crypto::CostMeter::drain_async).
    int crypto_parallelism = 16;
};

class ProcessingNode : public Node {
  public:
    using TimerId = std::uint64_t;

    explicit ProcessingNode(ProcessingConfig cfg = {}) : cfg_(cfg) {}

    void on_packet(NodeId from, const Packet& pkt) final;

    /// Total virtual time this node's CPU has been busy (utilisation stats).
    Time busy_time() const { return total_busy_; }
    std::uint64_t messages_handled() const { return messages_handled_; }
    /// Total virtual time arrivals waited in the queue before processing.
    Time queue_wait_time() const { return total_queue_wait_; }

    Time cpu_busy_time() const override { return total_busy_; }
    Time cpu_queue_wait() const override { return total_queue_wait_; }

    /// Received-message count by wire-kind byte (the first payload byte).
    /// One array increment per message; the raw material for Table 1's
    /// per-message-type bottleneck counts.
    std::uint64_t rx_count(std::uint8_t kind) const { return rx_by_kind_[kind]; }

    /// Maps a wire-kind byte to a stable name for metrics keys; returns
    /// nullptr for kinds the protocol does not name (dumped as "0x%02x").
    using KindNameFn = const char* (*)(std::uint8_t);

    /// Publishes nonzero per-kind rx counters under `prefix + ".rx."` at
    /// every registry dump.
    void register_rx_metrics(obs::Registry& reg, const std::string& prefix,
                             KindNameFn name_fn = nullptr);

    const ProcessingConfig& processing_config() const { return cfg_; }
    void set_processing_config(const ProcessingConfig& cfg) { cfg_ = cfg; }

  protected:
    /// Protocol logic. Runs when the CPU picks the message up; use send_to /
    /// broadcast for outputs — they depart when processing completes.
    virtual void handle(NodeId from, BytesView data) = 0;

    /// Queues an outbound unicast (only valid inside handle()/timer fns).
    /// Takes a Packet: `send_to(to, msg.serialize())` wraps the bytes once;
    /// passing the same Packet to several calls shares the buffer.
    void send_to(NodeId to, Packet data);
    /// Multicasts one shared buffer to every destination (counts one send
    /// each, but the payload is allocated exactly once).
    void broadcast(const std::vector<NodeId>& dests, const Packet& data);

    /// One-shot timer. The callback runs through the same cost machinery as
    /// message handlers. Returns an id usable with cancel_timer(). `label`
    /// names the timer in traces and must have static storage duration.
    TimerId set_timer(Time delay, std::function<void()> fn, const char* label = "timer");
    void cancel_timer(TimerId id);

    /// Drops every timer armed so far (ids below the current watermark) —
    /// their callbacks are suppressed at fire time. Used by the crash-
    /// recover lifecycle: a timer armed before a crash must not run against
    /// post-recovery state, even if the node is back up when it fires.
    void invalidate_timers() { min_valid_timer_ = next_timer_; }

    /// Attach the node's crypto cost meter so handler crypto charges CPU
    /// time automatically.
    void set_meter(crypto::CostMeter* meter) { meter_ = meter; }
    crypto::CostMeter* meter() { return meter_; }

    /// Extra synchronous CPU charge from protocol logic (e.g. state machine
    /// execution cost).
    void charge(Time ns) { extra_sync_ += ns; }

  private:
    struct PendingSend {
        NodeId to;
        Packet data;
    };

    void run_task(Time fixed_cost, FunctionRef work, const char* label);

    ProcessingConfig cfg_;
    crypto::CostMeter* meter_ = nullptr;

    // Arrival queue: messages and timer tasks wait here while the CPU is
    // busy. A valid `task` marks a timer item; messages hold a refcount on
    // the arriving packet's shared buffer.
    struct QueuedItem {
        NodeId from;
        Packet packet;
        EventFn task;
        TimerId timer_id;
        Time enqueued_at;
        const char* label;  // timer label; "" for messages
    };
    std::deque<QueuedItem> queue_;
    bool drain_scheduled_ = false;
    Time busy_until_ = 0;
    Time total_busy_ = 0;
    Time total_queue_wait_ = 0;
    std::uint64_t messages_handled_ = 0;
    std::array<std::uint64_t, 256> rx_by_kind_{};

    std::vector<PendingSend> out_;
    Time extra_sync_ = 0;
    bool in_task_ = false;

    TimerId next_timer_ = 1;
    TimerId min_valid_timer_ = 0;
    std::unordered_set<TimerId> cancelled_timers_;

    void maybe_schedule_drain();
    void drain_one();
};

}  // namespace neo::sim
