#include "sim/simulator.hpp"

#include "common/assert.hpp"

namespace neo::sim {

void Simulator::at(Time t, Callback fn) {
    NEO_ASSERT_MSG(t >= now_, "cannot schedule an event in the past");
    queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
    if (queue_.empty()) return false;
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the callback handle instead (std::function copy is cheap
    // relative to event work, and correctness beats micro-optimisation here).
    Event ev = queue_.top();
    queue_.pop();
    NEO_ASSERT(ev.t >= now_);
    now_ = ev.t;
    ++executed_;
    ev.fn();
    return true;
}

void Simulator::run() {
    stopped_ = false;
    while (!stopped_ && step()) {
    }
}

void Simulator::run_until(Time t) {
    stopped_ = false;
    while (!stopped_ && !queue_.empty() && queue_.top().t <= t) {
        step();
    }
    if (now_ < t) now_ = t;
}

}  // namespace neo::sim
