#include "sim/simulator.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace neo::sim {

using detail::Ev;
using detail::EventKey;
using detail::ExecContext;
using detail::g_ctx;
using detail::kTimeInf;

namespace detail {

void EventHeap::push(Ev e) {
    v_.push_back(std::move(e));
    sift_up(v_.size() - 1);
}

Ev EventHeap::pop() {
    Ev ev = std::move(v_.front());
    if (v_.size() > 1) {
        v_.front() = std::move(v_.back());
        v_.pop_back();
        sift_down(0);
    } else {
        v_.pop_back();
    }
    return ev;
}

void EventHeap::sift_up(std::size_t i) {
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!v_[i].key.before(v_[parent].key)) break;
        std::swap(v_[i], v_[parent]);
        i = parent;
    }
}

void EventHeap::sift_down(std::size_t i) {
    const std::size_t n = v_.size();
    for (;;) {
        std::size_t left = 2 * i + 1;
        if (left >= n) break;
        std::size_t best = left;
        std::size_t right = left + 1;
        if (right < n && v_[right].key.before(v_[left].key)) best = right;
        if (!v_[best].key.before(v_[i].key)) break;
        std::swap(v_[i], v_[best]);
        i = best;
    }
}

// One logical process: a slice of the nodes, their event heap and virtual
// clock, per-lane sequence counters, outgoing mailboxes (double-buffered by
// window parity), and — when tracing — a private trace buffer plus the event
// keys marking where each event's records end (for the window-boundary
// merge).
struct Partition {
    Partition(unsigned idx, unsigned nparts) : index(idx) {
        for (auto& par : outbox) par.resize(nparts);
        for (auto& par : outbox_min) par.assign(nparts, kTimeInf);
    }

    unsigned index;
    EventHeap heap;
    Time now = 0;
    std::uint64_t executed = 0;
    // Per-lane monotonic counters; unordered_map references are stable, so
    // ExecContext can hold a pointer across the event's execution.
    std::unordered_map<std::uint64_t, std::uint64_t> lane_seq;
    // outbox[parity][dst]: events this partition scheduled for partition
    // dst during a window writing `parity`; dst merges them at the start of
    // the next window (the barrier is the happens-before edge).
    std::vector<std::vector<Ev>> outbox[2];
    std::vector<Time> outbox_min[2];
    // at_global() calls made inside a window; collected by the coordinator
    // at the window boundary.
    std::vector<Ev> pending_globals;
    std::unique_ptr<obs::TraceSink> tbuf;
    std::vector<std::pair<EventKey, std::uint32_t>> tmarks;
};

}  // namespace detail

Simulator::Simulator(unsigned threads) : nparts_(threads == 0 ? 1 : threads) {
    parts_.reserve(nparts_);
    for (unsigned i = 0; i < nparts_; ++i) {
        parts_.push_back(std::make_unique<detail::Partition>(i, nparts_));
    }
}

Simulator::~Simulator() {
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            shutdown_ = true;
        }
        cv_work_.notify_all();
        for (auto& w : workers_) w.join();
    }
}

ExecContext* Simulator::own_ctx() const {
    ExecContext* c = g_ctx;
    return (c != nullptr && c->sim == this) ? c : nullptr;
}

EventKey Simulator::make_key(Time t, ExecContext* c) {
    if (c != nullptr) {
        NEO_ASSERT_MSG(t >= c->now, "cannot schedule an event in the past");
        return EventKey{t, c->lane, (*c->seq)++};
    }
    NEO_ASSERT_MSG(t >= now_, "cannot schedule an event in the past");
    return EventKey{t, kGlobalLane, global_seq_++};
}

void Simulator::at(Time t, Callback fn) {
    ExecContext* c = own_ctx();
    if (c != nullptr && c->part != nullptr) {
        schedule_node(t, static_cast<NodeId>(c->lane), std::move(fn), c);
    } else {
        schedule_global(t, std::move(fn), c);
    }
}

void Simulator::at_node(Time t, NodeId owner, Callback fn) {
    NEO_ASSERT_MSG(owner != kInvalidNode, "at_node() requires a real node id");
    schedule_node(t, owner, std::move(fn), own_ctx());
}

void Simulator::at_global(Time t, Callback fn) { schedule_global(t, std::move(fn), own_ctx()); }

void Simulator::schedule_node(Time t, NodeId owner, EventFn fn, ExecContext* c) {
    EventKey key = make_key(t, c);
    detail::Partition& dst = *parts_[partition_of(owner)];
    if (c != nullptr && c->part != nullptr && c->part != &dst) {
        // Cross-partition: the conservative contract — an event executing at
        // virtual time `now` may only create work for other partitions at
        // now + lookahead or later. (Trivially satisfied in serial mode,
        // where lookahead may be 0.)
        NEO_ASSERT_MSG(t >= c->now + lookahead_,
                       "cross-partition event violates the lookahead contract");
        if (c->windowed) {
            c->part->outbox[c->parity][dst.index].push_back(Ev{key, owner, std::move(fn)});
            Time& m = c->part->outbox_min[c->parity][dst.index];
            if (t < m) m = t;
            return;
        }
    }
    dst.heap.push(Ev{key, owner, std::move(fn)});
}

void Simulator::schedule_global(Time t, EventFn fn, ExecContext* c) {
    if (c != nullptr && c->part != nullptr) {
        // Scheduled from inside a node's event: the global must not land
        // inside the window that is scheduling it.
        NEO_ASSERT_MSG(t >= c->now + lookahead_,
                       "node-scheduled global events must be >= lookahead in the future");
        EventKey key = make_key(t, c);
        if (c->windowed) {
            c->part->pending_globals.push_back(Ev{key, kInvalidNode, std::move(fn)});
        } else {
            global_.push(Ev{key, kInvalidNode, std::move(fn)});
        }
        return;
    }
    global_.push(Ev{make_key(t, c), kInvalidNode, std::move(fn)});
}

// ---------------------------------------------------------------------------
// Serial engine (threads == 1, or lookahead == 0 fallback): one merged drain
// across the partition heaps and the global queue, in exactly the order the
// parallel engine realises — full key order among node events, full key
// order among globals, and a global at time Tg after every node event with
// t <= Tg.

void Simulator::exec_on_partition(detail::Partition& p, Ev ev) {
    NEO_ASSERT(ev.key.t >= p.now);
    p.now = ev.key.t;
    now_ = ev.key.t;
    ExecContext ctx;
    ctx.sim = this;
    ctx.part = &p;
    ctx.trace = trace_;
    ctx.now = ev.key.t;
    ctx.lane = ev.owner;
    ctx.seq = &p.lane_seq[ev.owner];
    ctx.shard = p.index;
    ctx.windowed = false;
    ExecContext* prev = g_ctx;
    g_ctx = &ctx;
    ++p.executed;
    ev.fn();
    g_ctx = prev;
}

void Simulator::exec_global(Ev ev) {
    NEO_ASSERT(ev.key.t >= now_);
    now_ = ev.key.t;
    ExecContext ctx;
    ctx.sim = this;
    ctx.part = nullptr;
    ctx.trace = trace_;
    ctx.now = ev.key.t;
    ctx.lane = kGlobalLane;
    ctx.seq = &global_seq_;
    ctx.shard = nparts_;
    ctx.windowed = false;
    ExecContext* prev = g_ctx;
    g_ctx = &ctx;
    ++executed_global_;
    ev.fn();
    g_ctx = prev;
}

bool Simulator::serial_step(Time limit) {
    detail::Partition* best = nullptr;
    for (auto& p : parts_) {
        if (p->heap.empty()) continue;
        if (best == nullptr || p->heap.top_key().before(best->heap.top_key())) best = p.get();
    }
    const bool have_global = !global_.empty();
    if (best != nullptr && (!have_global || best->heap.top_key().t <= global_.top_key().t)) {
        if (best->heap.top_key().t > limit) return false;
        exec_on_partition(*best, best->heap.pop());
        return true;
    }
    if (have_global) {
        if (global_.top_key().t > limit) return false;
        exec_global(global_.pop());
        return true;
    }
    return false;
}

bool Simulator::step() {
    // Mode switches mid-run (e.g. a test lowering link latency to zero) can
    // leave events parked in mailboxes or pending-global buffers; fold them
    // into the heaps before the merged drain.
    merge_all_mailboxes();
    collect_pending_globals();
    return serial_step(kTimeInf);
}

void Simulator::merge_all_mailboxes() {
    for (auto& src : parts_) {
        for (unsigned par = 0; par < 2; ++par) {
            for (unsigned d = 0; d < nparts_; ++d) {
                auto& box = src->outbox[par][d];
                for (auto& ev : box) parts_[d]->heap.push(std::move(ev));
                box.clear();
                src->outbox_min[par][d] = kTimeInf;
            }
        }
    }
}

void Simulator::collect_pending_globals() {
    for (auto& p : parts_) {
        for (auto& ev : p->pending_globals) global_.push(std::move(ev));
        p->pending_globals.clear();
    }
}

// ---------------------------------------------------------------------------
// Parallel engine: conservative YAWNS windows.

void Simulator::ensure_workers() {
    if (!workers_.empty()) return;
    workers_.reserve(nparts_);
    for (unsigned i = 0; i < nparts_; ++i) {
        workers_.emplace_back([this, i] { worker_main(i); });
    }
}

void Simulator::run_window(Time wend, unsigned parity) {
    {
        std::lock_guard<std::mutex> lk(mu_);
        window_end_ = wend;
        window_parity_ = parity;
        unfinished_.store(nparts_, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_work_.notify_all();
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return unfinished_.load(std::memory_order_acquire) == 0; });
}

void Simulator::worker_main(unsigned index) {
    detail::Partition& p = *parts_[index];
    // Log lines from this worker carry this partition's virtual clock.
    set_log_time_source([&p] { return p.now; });
    // The epoch starts at 0 and the coordinator bumps it once per window,
    // waiting for every worker in between — so "last processed" starts at 0
    // unconditionally. Loading epoch_ here instead would race with a first
    // window dispatched before this thread got scheduled.
    std::uint64_t seen = 0;
    for (;;) {
        Time wend;
        unsigned parity;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_work_.wait(lk, [&] {
                return shutdown_ || epoch_.load(std::memory_order_relaxed) != seen;
            });
            if (shutdown_) break;
            seen = epoch_.load(std::memory_order_relaxed);
            wend = window_end_;
            parity = window_parity_;
        }
        window_work(p, wend, parity);
        if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lk(mu_);
            cv_done_.notify_one();
        }
    }
    clear_log_time_source();
}

void Simulator::window_work(detail::Partition& p, Time wend, unsigned parity) {
    // Merge inbound mailboxes from the previous window (the other parity).
    // Only this partition reads column p.index, and producers are writing
    // the current parity — disjoint halves, no synchronisation needed.
    for (auto& src : parts_) {
        auto& box = src->outbox[parity ^ 1][p.index];
        if (!box.empty()) {
            for (auto& ev : box) p.heap.push(std::move(ev));
            box.clear();
        }
        src->outbox_min[parity ^ 1][p.index] = kTimeInf;
    }

    ExecContext ctx;
    ctx.sim = this;
    ctx.part = &p;
    ctx.trace = (trace_ != nullptr && p.tbuf) ? p.tbuf.get() : nullptr;
    ctx.shard = p.index;
    ctx.parity = parity;
    ctx.windowed = true;
    ExecContext* prev = g_ctx;
    g_ctx = &ctx;
    std::size_t tprev = ctx.trace != nullptr ? p.tbuf->size() : 0;
    while (!p.heap.empty() && p.heap.top_key().t < wend) {
        Ev ev = p.heap.pop();
        NEO_ASSERT(ev.key.t >= p.now);
        p.now = ev.key.t;
        ctx.now = ev.key.t;
        ctx.lane = ev.owner;
        ctx.seq = &p.lane_seq[ev.owner];
        ++p.executed;
        ev.fn();
        if (ctx.trace != nullptr && p.tbuf->size() != tprev) {
            p.tmarks.emplace_back(ev.key, static_cast<std::uint32_t>(p.tbuf->size()));
            tprev = p.tbuf->size();
        }
    }
    g_ctx = prev;
}

void Simulator::merge_window_traces() {
    if (trace_ == nullptr) return;
    // K-way merge of the per-partition record chunks into the master sink in
    // event-key order — the exact order the serial engine records in.
    struct Cursor {
        detail::Partition* p;
        std::size_t mark = 0;
        std::uint32_t ev = 0;
    };
    std::vector<Cursor> cur;
    for (auto& p : parts_) {
        if (!p->tmarks.empty()) cur.push_back(Cursor{p.get()});
    }
    while (!cur.empty()) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < cur.size(); ++i) {
            if (cur[i].p->tmarks[cur[i].mark].first.before(cur[best].p->tmarks[cur[best].mark].first)) {
                best = i;
            }
        }
        Cursor& c = cur[best];
        const std::uint32_t end = c.p->tmarks[c.mark].second;
        const auto& evs = c.p->tbuf->events();
        for (std::uint32_t i = c.ev; i < end; ++i) trace_->append(evs[i]);
        c.ev = end;
        if (++c.mark == c.p->tmarks.size()) {
            c.p->tbuf->clear();
            c.p->tmarks.clear();
            cur.erase(cur.begin() + static_cast<std::ptrdiff_t>(best));
        }
    }
}

void Simulator::parallel_drain(Time limit) {
    ensure_workers();
    if (trace_ != nullptr) {
        for (auto& p : parts_) {
            if (!p->tbuf) p->tbuf = std::make_unique<obs::TraceSink>();
            // Partition-local buffers must filter exactly like the master
            // sink, or a masked master would still pay (and later merge)
            // suppressed kinds recorded inside windows.
            p->tbuf->set_kind_mask(trace_->kind_mask());
        }
    }
    unsigned carry = carry_parity_;
    while (!stop_flag_.load(std::memory_order_relaxed)) {
        // Earliest pending node event: heap tops plus events still parked in
        // carry-parity mailboxes (the other parity is empty between windows).
        Time tmin = kTimeInf;
        for (auto& p : parts_) {
            if (!p->heap.empty()) tmin = std::min(tmin, p->heap.top_key().t);
            for (Time m : p->outbox_min[carry]) tmin = std::min(tmin, m);
        }
        const Time tg = global_.empty() ? kTimeInf : global_.top_key().t;
        const Time tnext = std::min(tmin, tg);
        if (tnext >= kTimeInf || tnext > limit) break;

        if (tmin <= tg) {
            // Safe horizon: nothing a node event at >= tmin creates can land
            // before tmin + lookahead; the earliest global and the caller's
            // limit cap it. After this window no node event with t <= tg
            // remains, so the serial tie rule (node events before a
            // same-time global) is preserved.
            const Time wend = std::min({tmin + lookahead_, tg + 1, limit + 1});
            run_window(wend, carry ^ 1);
            carry ^= 1;
            collect_pending_globals();
            merge_window_traces();
        } else {
            // One global at a time: it may schedule node events that key-sort
            // before the next pending global, so re-derive tmin in between.
            exec_global(global_.pop());
        }
    }
    carry_parity_ = carry;
    for (auto& p : parts_) now_ = std::max(now_, p->now);
}

// ---------------------------------------------------------------------------

void Simulator::run_limit(Time limit) {
    stop_flag_.store(false, std::memory_order_relaxed);
    if (nparts_ > 1 && lookahead_ > 0) {
        parallel_drain(limit);
        return;
    }
    merge_all_mailboxes();
    collect_pending_globals();
    while (!stop_flag_.load(std::memory_order_relaxed) && serial_step(limit)) {
    }
}

void Simulator::run() { run_limit(kTimeInf); }

void Simulator::run_until(Time t) {
    run_limit(t);
    if (now_ < t) now_ = t;
}

std::size_t Simulator::pending_events() const {
    std::size_t n = global_.size();
    for (const auto& p : parts_) {
        n += p->heap.size();
        for (const auto& par : p->outbox) {
            for (const auto& box : par) n += box.size();
        }
        n += p->pending_globals.size();
    }
    return n;
}

std::uint64_t Simulator::executed_events() const {
    std::uint64_t n = executed_global_;
    for (const auto& p : parts_) n += p->executed;
    return n;
}

}  // namespace neo::sim
