#include "sim/simulator.hpp"

#include "common/assert.hpp"

namespace neo::sim {

void Simulator::sift_up(std::size_t i) {
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!heap_[i].before(heap_[parent])) break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void Simulator::sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t left = 2 * i + 1;
        if (left >= n) break;
        std::size_t best = left;
        std::size_t right = left + 1;
        if (right < n && heap_[right].before(heap_[left])) best = right;
        if (!heap_[best].before(heap_[i])) break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
}

Simulator::Event Simulator::pop_event() {
    Event ev = std::move(heap_.front());
    if (heap_.size() > 1) {
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        sift_down(0);
    } else {
        heap_.pop_back();
    }
    return ev;
}

void Simulator::at(Time t, Callback fn) {
    NEO_ASSERT_MSG(t >= now_, "cannot schedule an event in the past");
    heap_.push_back(Event{t, next_seq_++, std::move(fn)});
    sift_up(heap_.size() - 1);
}

bool Simulator::step() {
    if (heap_.empty()) return false;
    Event ev = pop_event();
    NEO_ASSERT(ev.t >= now_);
    now_ = ev.t;
    ++executed_;
    ev.fn();
    return true;
}

void Simulator::run() {
    stopped_ = false;
    while (!stopped_ && step()) {
    }
}

void Simulator::run_until(Time t) {
    stopped_ = false;
    while (!stopped_ && !heap_.empty() && heap_.front().t <= t) {
        step();
    }
    if (now_ < t) now_ = t;
}

}  // namespace neo::sim
