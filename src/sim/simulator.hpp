// Deterministic discrete-event simulator.
//
// Single-threaded by design: all protocol logic runs inside events, and a
// single seed makes an entire run — including jitter, drops, and workload —
// bit-for-bit reproducible. Events at the same timestamp fire in scheduling
// order (a monotonic sequence number breaks ties).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace neo::obs {
class TraceSink;
}

namespace neo::sim {

class Simulator {
  public:
    using Callback = std::function<void()>;

    Time now() const { return now_; }

    /// Structured trace sink shared by everything running inside this
    /// simulation. Null (the default) disables tracing; call sites guard on
    /// the pointer so a disabled sink costs one branch on the hot path.
    void set_trace(obs::TraceSink* sink) { trace_ = sink; }
    obs::TraceSink* trace() const { return trace_; }

    /// Schedules `fn` at absolute time `t` (must be >= now()).
    void at(Time t, Callback fn);

    /// Schedules `fn` after `delay` nanoseconds.
    void after(Time delay, Callback fn) { at(now_ + delay, std::move(fn)); }

    /// Runs the next event. Returns false if the queue is empty.
    bool step();

    /// Runs until the queue is empty or stop() is called.
    void run();

    /// Runs all events with timestamp <= t, then advances now() to t.
    void run_until(Time t);

    /// Makes run()/run_until() return after the current event.
    void stop() { stopped_ = true; }

    std::size_t pending_events() const { return queue_.size(); }
    std::uint64_t executed_events() const { return executed_; }

  private:
    struct Event {
        Time t;
        std::uint64_t seq;
        Callback fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.t != b.t) return a.t > b.t;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    obs::TraceSink* trace_ = nullptr;
    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    bool stopped_ = false;
};

}  // namespace neo::sim
