// Deterministic discrete-event simulator with an optional conservative
// parallel engine (PDES).
//
// Serial mode (threads == 1, the default) behaves exactly like the original
// single-threaded engine: one seed makes an entire run — including jitter,
// drops, and workload — bit-for-bit reproducible.
//
// Parallel mode (threads == N) partitions nodes across N worker threads
// (pluggable placement policy, see set_placement(); round-robin id % N by
// default), each with its own event heap and virtual
// clock, and advances the simulation in conservative YAWNS-style windows:
// with L = the minimum cross-node link latency ("lookahead", pushed down by
// sim::Network whenever link configs change) every event a partition
// executes at time t can only create work for OTHER partitions at t + L or
// later, so all partitions may safely run in parallel up to
//
//     W_end = min(Tmin + L,  Tg + 1,  limit + 1)
//
// where Tmin is the earliest pending node event and Tg the earliest pending
// global event. Cross-partition events travel through per-(src,dst) mailbox
// vectors that are double-buffered by window parity — the producer appends
// during its window, the consumer merges at the start of the next window,
// and the inter-window barrier provides the happens-before edge, so the hot
// path needs no atomics or locks. Packet buffers (sim/packet.hpp) are
// refcounted with atomic counts and cross threads without copying.
//
// Determinism is structural, not incidental: every event carries a key
// (t, lane, seq) where `lane` is the id of the node that scheduled it
// (kGlobalLane for setup/main-thread scheduling) and `seq` a per-lane
// monotonic counter. The key is a pure function of simulation data — it
// never mentions partitions or threads — and execution order is exactly key
// order in both modes, so same-seed runs produce byte-identical traces and
// metrics under --sim-threads 1 and --sim-threads N. Global events (those
// scheduled from outside any node, e.g. measurement hooks, plus
// at_global()) execute between windows with all workers parked, ordered
// after every node event with time <= their own; the serial path applies
// the same rule, so cross-node shared state may be read during windows and
// mutated only at global events.
//
// When lookahead is zero (e.g. idealised zero-latency links) conservative
// windows cannot make progress, and the engine silently falls back to the
// serial merged drain regardless of the configured thread count — same
// results, no speedup.
//
// The per-partition event queue is a hand-rolled binary heap rather than a
// std::priority_queue of std::function: callbacks are move-only EventFns
// with inline storage (packet-delivery closures never touch the heap, see
// sim/event.hpp), and pop() moves the top event out instead of copying it.
// Pop order is governed solely by the strict total order on keys, so the
// heap layout cannot leak into simulated results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/event.hpp"
#include "sim/time.hpp"

namespace neo::obs {
class TraceSink;
}

namespace neo::sim {

class Simulator;

namespace detail {

/// Saturating "infinitely far in the future" sentinel (safe to add small
/// offsets to without overflow).
constexpr Time kTimeInf = INT64_MAX / 4;

/// Strict total order on events: (time, scheduling lane, per-lane counter).
/// A pure function of simulation data — independent of partition count and
/// thread scheduling — so key order is THE execution order in every mode.
struct EventKey {
    Time t = 0;
    std::uint64_t lane = 0;
    std::uint64_t seq = 0;

    bool before(const EventKey& o) const {
        if (t != o.t) return t < o.t;
        if (lane != o.lane) return lane < o.lane;
        return seq < o.seq;
    }
};

struct Ev {
    EventKey key;
    NodeId owner = kInvalidNode;  // node the event executes at; routing only
    EventFn fn;
};

/// Min-heap on EventKey::before; pop() moves the event out (no copies).
class EventHeap {
  public:
    bool empty() const { return v_.empty(); }
    std::size_t size() const { return v_.size(); }
    const EventKey& top_key() const { return v_.front().key; }

    void push(Ev e);
    Ev pop();

  private:
    void sift_up(std::size_t i);
    void sift_down(std::size_t i);
    std::vector<Ev> v_;
};

struct Partition;

/// Per-thread execution frame: which simulator/partition is executing,
/// the event's virtual time, and the scheduling identity (lane + counter)
/// stamped onto anything the event schedules. Installed around every event
/// execution; null outside one (setup code on the main thread).
struct ExecContext {
    Simulator* sim = nullptr;
    Partition* part = nullptr;    // null => global context
    obs::TraceSink* trace = nullptr;
    Time now = 0;
    std::uint64_t lane = 0;
    std::uint64_t* seq = nullptr;
    unsigned shard = 0;
    unsigned parity = 0;    // outbox half this window writes (windowed only)
    bool windowed = false;  // true inside a parallel window
};

inline thread_local ExecContext* g_ctx = nullptr;

}  // namespace detail

class Simulator {
  public:
    using Callback = EventFn;

    /// Lane id stamped on events scheduled from outside any node context.
    /// Largest lane value: at equal times, main-thread/global scheduling
    /// sorts after every node's.
    static constexpr std::uint64_t kGlobalLane = ~0ull;

    /// `threads` worker partitions; 1 (the default) is the serial engine.
    explicit Simulator(unsigned threads = 1);
    ~Simulator();

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    unsigned partitions() const { return nparts_; }

    /// Node -> partition placement. Placement is a host-side locality knob
    /// only: the EventKey total order never mentions partitions, so any
    /// placement yields byte-identical simulated results (asserted by
    /// tests/integration/test_placement) — a good one merely keeps chatty
    /// nodes on one worker and off the cross-partition mailboxes.
    /// Nodes bound by Network::add_node get the pluggable policy (below);
    /// ids never bound fall back to the historical round-robin.
    unsigned partition_of(NodeId owner) const {
        if (owner < placement_.size() && placement_[owner] != kUnplaced) {
            return placement_[owner];
        }
        return static_cast<unsigned>(owner % nparts_);
    }

    /// Pluggable placement policy, e.g. group-affine for sharded
    /// deployments (all replicas of one shard co-located). Must be
    /// installed from setup code BEFORE the nodes it should govern are
    /// attached; already-bound nodes keep their partition. The returned
    /// index is taken modulo partitions().
    using PlacementFn = std::function<unsigned(NodeId, unsigned nparts)>;
    void set_placement(PlacementFn policy) { placement_policy_ = std::move(policy); }

    /// Memoizes `id`'s partition under the current policy. Called by
    /// Network::add_node; setup code (single-threaded) only — the table
    /// must be immutable by the time workers run.
    void bind_node(NodeId id) {
        unsigned p = placement_policy_
                         ? placement_policy_(id, nparts_) % nparts_
                         : static_cast<unsigned>(id % nparts_);
        if (placement_.size() <= id) placement_.resize(id + 1, kUnplaced);
        placement_[id] = p;
    }

    /// Shard index for per-partition instrumentation (e.g. Network's
    /// counter shards): the executing partition's index, or partitions()
    /// from global context. Which shard an increment lands in is a pure
    /// function of the executing event, so per-shard sums are identical
    /// across thread counts.
    unsigned current_shard() const {
        const detail::ExecContext* c = detail::g_ctx;
        return (c != nullptr && c->sim == this && c->part != nullptr) ? c->shard : nparts_;
    }

    /// Virtual time of the current execution context: the executing event's
    /// timestamp on this thread, or the simulator-wide clock outside one.
    Time now() const {
        const detail::ExecContext* c = detail::g_ctx;
        return (c != nullptr && c->sim == this) ? c->now : now_;
    }

    /// Structured trace sink shared by everything running inside this
    /// simulation. Null (the default) disables tracing; call sites guard on
    /// the pointer so a disabled sink costs one branch on the hot path.
    /// Inside a parallel window this returns the executing partition's
    /// private buffer; buffers are merged into the master sink in event-key
    /// order at each window boundary (deterministic, no hot-path lock).
    void set_trace(obs::TraceSink* sink) { trace_ = sink; }
    obs::TraceSink* trace() const {
        const detail::ExecContext* c = detail::g_ctx;
        return (c != nullptr && c->sim == this) ? c->trace : trace_;
    }

    /// Conservative lookahead: a lower bound on the delay of any
    /// cross-node interaction. sim::Network maintains this as its minimum
    /// configured link latency. 0 disables parallel windows (serial
    /// fallback). Takes effect at the next window boundary.
    void set_lookahead(Time min_cross_node_delay) { lookahead_ = min_cross_node_delay; }
    Time lookahead() const { return lookahead_; }

    /// Schedules `fn` at absolute time `t` (must be >= now()). From inside
    /// a node's event the new event belongs to that node; from setup code
    /// or a global event it is a global event (runs with workers parked).
    void at(Time t, Callback fn);

    /// Schedules `fn` after `delay` nanoseconds.
    void after(Time delay, Callback fn) { at(now() + delay, std::move(fn)); }

    /// Schedules `fn` at time `t` to execute at `owner`'s partition — the
    /// form every cross-node interaction must take. When called from a
    /// different partition's event, `t` must be at least lookahead() in the
    /// future (the conservative contract; asserted).
    void at_node(Time t, NodeId owner, Callback fn);

    /// Schedules `fn` as a global event: it runs between windows with every
    /// worker parked, after all node events with timestamp <= t, and may
    /// therefore read and mutate cross-node shared state. From inside a
    /// node's event, `t` must be at least lookahead() in the future.
    void at_global(Time t, Callback fn);

    /// Runs the next event in key order. Returns false if the queue is
    /// empty. Serial (coordinator-thread) stepping only.
    bool step();

    /// Runs until the queue is empty or stop() is called.
    void run();

    /// Runs all events with timestamp <= t, then advances now() to t.
    void run_until(Time t);

    /// Makes run()/run_until() return. Immediate (after the current event)
    /// in serial mode; in parallel mode the engine stops at the next window
    /// boundary — the remaining window still executes.
    void stop() { stop_flag_.store(true, std::memory_order_relaxed); }

    std::size_t pending_events() const;
    std::uint64_t executed_events() const;

  private:
    detail::ExecContext* own_ctx() const;
    detail::EventKey make_key(Time t, detail::ExecContext* c);
    void schedule_node(Time t, NodeId owner, EventFn fn, detail::ExecContext* c);
    void schedule_global(Time t, EventFn fn, detail::ExecContext* c);
    bool serial_step(Time limit);
    void exec_on_partition(detail::Partition& p, detail::Ev ev);
    void exec_global(detail::Ev ev);
    void run_limit(Time limit);
    void parallel_drain(Time limit);
    void merge_all_mailboxes();
    void collect_pending_globals();
    void merge_window_traces();
    void ensure_workers();
    void run_window(Time wend, unsigned parity);
    void worker_main(unsigned index);
    void window_work(detail::Partition& p, Time wend, unsigned parity);

    static constexpr unsigned kUnplaced = ~0u;

    unsigned nparts_;
    Time lookahead_ = 0;
    PlacementFn placement_policy_;
    std::vector<unsigned> placement_;  // NodeId-indexed; kUnplaced = policy fallback
    std::vector<std::unique_ptr<detail::Partition>> parts_;
    detail::EventHeap global_;
    obs::TraceSink* trace_ = nullptr;
    Time now_ = 0;
    std::uint64_t global_seq_ = 0;
    std::uint64_t executed_global_ = 0;
    std::atomic<bool> stop_flag_{false};

    // Worker pool (parallel mode only; spawned lazily on the first
    // parallel drain). Workers park between windows; the epoch/unfinished
    // pair is the window barrier.
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> unfinished_{0};
    bool shutdown_ = false;
    Time window_end_ = 0;
    unsigned window_parity_ = 0;  // outbox half the in-flight window writes
    unsigned carry_parity_ = 0;   // outbox half holding undelivered events
};

}  // namespace neo::sim
