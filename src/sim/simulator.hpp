// Deterministic discrete-event simulator.
//
// Single-threaded by design: all protocol logic runs inside events, and a
// single seed makes an entire run — including jitter, drops, and workload —
// bit-for-bit reproducible. Events at the same timestamp fire in scheduling
// order (a monotonic sequence number breaks ties).
//
// The event queue is a hand-rolled binary heap rather than a
// std::priority_queue of std::function: callbacks are move-only EventFns
// with inline storage (packet-delivery closures never touch the heap, see
// sim/event.hpp), and pop() moves the top event out instead of copying it —
// std::priority_queue::top() is const, which forced a per-event deep copy
// of the callback. Pop order is governed solely by the strict total order
// (t, seq), so the heap layout cannot leak into simulated results.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace neo::obs {
class TraceSink;
}

namespace neo::sim {

class Simulator {
  public:
    using Callback = EventFn;

    Time now() const { return now_; }

    /// Structured trace sink shared by everything running inside this
    /// simulation. Null (the default) disables tracing; call sites guard on
    /// the pointer so a disabled sink costs one branch on the hot path.
    void set_trace(obs::TraceSink* sink) { trace_ = sink; }
    obs::TraceSink* trace() const { return trace_; }

    /// Schedules `fn` at absolute time `t` (must be >= now()).
    void at(Time t, Callback fn);

    /// Schedules `fn` after `delay` nanoseconds.
    void after(Time delay, Callback fn) { at(now_ + delay, std::move(fn)); }

    /// Runs the next event. Returns false if the queue is empty.
    bool step();

    /// Runs until the queue is empty or stop() is called.
    void run();

    /// Runs all events with timestamp <= t, then advances now() to t.
    void run_until(Time t);

    /// Makes run()/run_until() return after the current event.
    void stop() { stopped_ = true; }

    std::size_t pending_events() const { return heap_.size(); }
    std::uint64_t executed_events() const { return executed_; }

  private:
    struct Event {
        Time t;
        std::uint64_t seq;
        EventFn fn;

        /// Strict weak "fires earlier" order; seq (unique) breaks ties, so
        /// the order is total and pop order is implementation-independent.
        bool before(const Event& o) const { return t != o.t ? t < o.t : seq < o.seq; }
    };

    void sift_up(std::size_t i);
    void sift_down(std::size_t i);
    /// Moves the earliest event out of the heap (heap must be non-empty).
    Event pop_event();

    std::vector<Event> heap_;  // min-heap on Event::before
    obs::TraceSink* trace_ = nullptr;
    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    bool stopped_ = false;
};

}  // namespace neo::sim
