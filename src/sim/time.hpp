// Virtual time for the discrete-event simulation.
#pragma once

#include <cstdint>

namespace neo::sim {

/// Virtual nanoseconds since simulation start.
using Time = std::int64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1'000;
constexpr Time kMillisecond = 1'000'000;
constexpr Time kSecond = 1'000'000'000;

constexpr double to_us(Time t) { return static_cast<double>(t) / 1'000.0; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1'000'000.0; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1'000'000'000.0; }

}  // namespace neo::sim
