// Shared fixture pieces for aom tests: a host node embedding the receiver
// library, a sender client, and a full single-group deployment.
#pragma once

#include <memory>
#include <vector>

#include "aom/config_service.hpp"
#include "aom/receiver.hpp"
#include "aom/sender.hpp"
#include "aom/sequencer.hpp"
#include "crypto/identity.hpp"
#include "sim/costs.hpp"
#include "sim/processing_node.hpp"

namespace neo::aom::testutil {

/// Application endpoint hosting an AomReceiver; records deliveries.
class HostNode : public sim::ProcessingNode, public ReceiverHost {
  public:
    explicit HostNode(std::unique_ptr<crypto::NodeCrypto> crypto) : crypto_(std::move(crypto)) {
        set_meter(&crypto_->meter());
    }

    void init_receiver(const GroupConfig& group, const AomKeyService* keys,
                       ReceiverOptions opts = {}) {
        receiver_ = std::make_unique<AomReceiver>(group, id(), crypto_.get(), keys, this, opts);
        receiver_->set_deliver([this](Delivery d) { deliveries.push_back(std::move(d)); });
    }

    AomReceiver& receiver() { return *receiver_; }
    crypto::NodeCrypto& crypto() { return *crypto_; }

    std::vector<Delivery> deliveries;

    // ReceiverHost:
    void aom_send(NodeId to, Bytes data) override { send_to(to, std::move(data)); }
    std::uint64_t aom_set_timer(sim::Time delay, std::function<void()> fn,
                                const char* label) override {
        return set_timer(delay, std::move(fn), label);
    }
    void aom_cancel_timer(std::uint64_t id) override { cancel_timer(id); }
    sim::Time aom_now() const override { return const_cast<HostNode*>(this)->sim().now(); }
    obs::TraceSink* aom_trace() override { return sim().trace(); }

  protected:
    void handle(NodeId from, BytesView data) override {
        if (receiver_ && is_aom_packet(data)) receiver_->on_packet(from, data);
    }

  private:
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    std::unique_ptr<AomReceiver> receiver_;
};

/// Client that pushes payloads into an aom group.
class SenderNode : public sim::ProcessingNode {
  public:
    explicit SenderNode(std::unique_ptr<crypto::NodeCrypto> crypto) : crypto_(std::move(crypto)) {
        set_meter(&crypto_->meter());
    }

    void init_sender(GroupId group, const SequencerDirectory* dir) {
        sender_ = std::make_unique<AomSender>(group, crypto_.get(), dir);
    }

    void send_payload(Bytes payload) {
        net().send(id(), sender_->route(), sender_->make_packet(payload));
    }

    AomSender& aom() { return *sender_; }

  protected:
    void handle(NodeId, BytesView) override {}

  private:
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    std::unique_ptr<AomSender> sender_;
};

/// A complete single-group deployment: R receivers, `n_switches` switches,
/// a config service, and one sender.
struct Deployment {
    static constexpr GroupId kGroup = 7;
    static constexpr NodeId kConfigId = 100;
    static constexpr NodeId kSwitchBase = 200;
    static constexpr NodeId kSenderId = 300;
    static constexpr NodeId kReceiverBase = 1;

    Deployment(int receivers, AuthVariant variant, NetworkTrust trust = NetworkTrust::kCrashOnly,
               int f = 1, crypto::CryptoMode mode = crypto::CryptoMode::kReal,
               int n_switches = 1, SequencerConfig seq_cfg = {},
               ReceiverOptions recv_opts = {})
        : net(sim, /*seed=*/99), root(mode, /*seed=*/42), keys(/*seed=*/43) {
        net.set_default_link(sim::datacenter_link());

        GroupConfig group;
        group.group = kGroup;
        group.variant = variant;
        group.trust = trust;
        group.f = f;
        for (int i = 0; i < receivers; ++i) group.receivers.push_back(kReceiverBase + static_cast<NodeId>(i));

        for (int s = 0; s < n_switches; ++s) {
            auto sw = std::make_unique<SequencerSwitch>(seq_cfg, root.provision(kSwitchBase + static_cast<NodeId>(s)),
                                                        &keys);
            net.add_node(*sw, kSwitchBase + static_cast<NodeId>(s));
            switches.push_back(std::move(sw));
        }

        std::vector<SequencerSwitch*> pool;
        for (auto& sw : switches) pool.push_back(sw.get());
        config = std::make_unique<ConfigService>(&keys, pool);
        net.add_node(*config, kConfigId);
        config->register_group(group);

        for (int i = 0; i < receivers; ++i) {
            auto host = std::make_unique<HostNode>(root.provision(kReceiverBase + static_cast<NodeId>(i)));
            net.add_node(*host, kReceiverBase + static_cast<NodeId>(i));
            host->init_receiver(group, &keys, recv_opts);
            host->receiver().start_epoch(1, config->current_sequencer(kGroup));
            hosts.push_back(std::move(host));
        }

        sender = std::make_unique<SenderNode>(root.provision(kSenderId));
        net.add_node(*sender, kSenderId);
        sender->init_sender(kGroup, config.get());
    }

    sim::Simulator sim;
    sim::Network net;
    crypto::TrustRoot root;
    AomKeyService keys;
    std::vector<std::unique_ptr<SequencerSwitch>> switches;
    std::unique_ptr<ConfigService> config;
    std::vector<std::unique_ptr<HostNode>> hosts;
    std::unique_ptr<SenderNode> sender;
};

}  // namespace neo::aom::testutil
