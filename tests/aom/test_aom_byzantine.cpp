// Byzantine-faulty-network mode (§4.2): confirm-message quorums tolerate an
// equivocating sequencer.
#include <gtest/gtest.h>

#include "aom_test_util.hpp"
#include "crypto/sha256.hpp"

namespace neo::aom {
namespace {

using testutil::Deployment;

TEST(AomByzantine, DeliveryRequiresConfirmQuorum) {
    Deployment d(4, AuthVariant::kHmacVector, NetworkTrust::kByzantine, /*f=*/1);
    d.sender->send_payload(to_bytes("needs quorum"));
    d.sim.run();
    for (auto& host : d.hosts) {
        ASSERT_EQ(host->deliveries.size(), 1u);
        const auto& cert = host->deliveries[0].cert;
        EXPECT_GE(cert.confirms.size(), 3u);  // 2f+1 with f=1
        EXPECT_TRUE(verify_cert(cert, host->receiver().verify_context()));
    }
}

TEST(AomByzantine, CertificateWithoutConfirmsRejected) {
    Deployment d(4, AuthVariant::kHmacVector, NetworkTrust::kByzantine, 1);
    d.sender->send_payload(to_bytes("strip me"));
    d.sim.run();
    OrderingCert cert = d.hosts[0]->deliveries.at(0).cert;
    cert.confirms.clear();
    EXPECT_FALSE(verify_cert(cert, d.hosts[1]->receiver().verify_context()));
}

TEST(AomByzantine, DuplicateConfirmersDoNotCount) {
    Deployment d(4, AuthVariant::kHmacVector, NetworkTrust::kByzantine, 1);
    d.sender->send_payload(to_bytes("dup"));
    d.sim.run();
    OrderingCert cert = d.hosts[0]->deliveries.at(0).cert;
    ASSERT_GE(cert.confirms.size(), 3u);
    // Replace all confirms with copies of the first signer's.
    ConfirmSig first = cert.confirms[0];
    cert.confirms = {first, first, first};
    EXPECT_FALSE(verify_cert(cert, d.hosts[1]->receiver().verify_context()));
}

TEST(AomByzantine, ForgedConfirmSignatureRejected) {
    Deployment d(4, AuthVariant::kHmacVector, NetworkTrust::kByzantine, 1);
    d.sender->send_payload(to_bytes("forge"));
    d.sim.run();
    OrderingCert cert = d.hosts[0]->deliveries.at(0).cert;
    for (auto& c : cert.confirms) c.signature[0] ^= 1;
    EXPECT_FALSE(verify_cert(cert, d.hosts[1]->receiver().verify_context()));
}

TEST(AomByzantine, ConfirmsBatchAcrossMessages) {
    // Many messages in flight: confirms are batched, so the number of
    // confirm packets stays well below messages x receivers.
    Deployment d(4, AuthVariant::kHmacVector, NetworkTrust::kByzantine, 1);
    std::uint64_t confirm_packets = 0;
    d.net.set_tamper([&confirm_packets](NodeId, NodeId, Bytes& data) {
        if (!data.empty() && data[0] == static_cast<std::uint8_t>(Wire::kConfirm)) {
            ++confirm_packets;
        }
        return sim::TamperAction::kDeliver;
    });
    for (int i = 0; i < 64; ++i) d.sender->send_payload(to_bytes("b" + std::to_string(i)));
    d.sim.run();
    for (auto& host : d.hosts) {
        std::size_t messages = 0;
        for (const auto& del : host->deliveries) {
            if (del.kind == Delivery::Kind::kMessage) ++messages;
        }
        EXPECT_EQ(messages, 64u);
    }
    // Unbatched would be 64 msgs x 4 senders x 3 peers = 768 packets.
    EXPECT_LT(confirm_packets, 200u);
    EXPECT_GT(confirm_packets, 0u);
}

TEST(AomByzantine, TamperedConfirmInBatchIsolatedByBisect) {
    // Corrupt every confirm signature receiver 0 sends to receiver 1 (the
    // last byte of a kConfirm packet is the final entry's signature tail).
    // Receiver 1's batch verification must isolate the forged entries via
    // the bisecting fallback and still deliver everything on the honest
    // 2f+1 quorum from the remaining receivers.
    Deployment d(4, AuthVariant::kHmacVector, NetworkTrust::kByzantine, 1);
    const NodeId bad_src = Deployment::kReceiverBase;
    const NodeId victim = Deployment::kReceiverBase + 1;
    d.net.set_tamper([&](NodeId from, NodeId to, Bytes& data) {
        if (from == bad_src && to == victim && !data.empty() &&
            data[0] == static_cast<std::uint8_t>(Wire::kConfirm)) {
            data.back() ^= 1;
        }
        return sim::TamperAction::kDeliver;
    });
    for (int i = 0; i < 64; ++i) d.sender->send_payload(to_bytes("t" + std::to_string(i)));
    d.sim.run();

    for (auto& host : d.hosts) {
        std::size_t messages = 0;
        for (const auto& del : host->deliveries) {
            if (del.kind == Delivery::Kind::kMessage) ++messages;
        }
        EXPECT_EQ(messages, 64u);  // forged confirms never block delivery
    }
    // The victim's batches were not all-valid: the bisect descent ran and
    // every forged leaf was rechecked one-shot before rejection.
    const crypto::BatchVerifyStats& stats = d.hosts[1]->crypto().batch_stats();
    EXPECT_GT(stats.bisect_batches, 0u);
    EXPECT_GT(stats.leaf_rechecks, 0u);
    // Honest receivers saw only valid signatures: pure fast path.
    EXPECT_EQ(d.hosts[2]->crypto().batch_stats().bisect_batches, 0u);
}

// A sequencer that equivocates: sends receiver 0 a different payload (with
// valid per-receiver authentication!) than everyone else for each seq.
class EquivocatingSwitch : public SequencerSwitch {
  public:
    using SequencerSwitch::SequencerSwitch;
    NodeId victim = Deployment::kReceiverBase;

  protected:
    void emit(NodeId receiver, sim::Time depart, sim::Packet packet) override {
        BytesView data = packet.view();
        if (receiver == victim && !data.empty() &&
            data[0] == static_cast<std::uint8_t>(Wire::kSeqHm)) {
            try {
                Reader r(data.subspan(1));
                HmPacket pkt = HmPacket::parse(r);
                // Re-author the packet with conflicting content, re-MACed
                // for the victim (the Byzantine switch holds all HM keys,
                // so per-receiver MACs are forgeable by it -- exactly the
                // attack the confirm protocol exists for).
                pkt.payload = to_bytes("EQUIVOCATED");
                pkt.digest = crypto::sha256(pkt.payload);
                Bytes input = auth_input(pkt.group, pkt.epoch, pkt.seq, pkt.digest);
                for (std::size_t slot = 0; slot < group_receivers_.size(); ++slot) {
                    int base = static_cast<int>(pkt.subgroup) * kHmSubgroupSize;
                    if (static_cast<int>(slot) >= base &&
                        static_cast<int>(slot) < base + static_cast<int>(pkt.macs.size())) {
                        pkt.macs[slot - static_cast<std::size_t>(base)] = crypto::halfsiphash24(
                            keys_for_test_->hm_key(id(), group_receivers_[slot]), input);
                    }
                }
                SequencerSwitch::emit(receiver, depart, pkt.serialize());
                return;
            } catch (const CodecError&) {
            }
        }
        SequencerSwitch::emit(receiver, depart, std::move(packet));
    }

  public:
    std::vector<NodeId> group_receivers_;
    const AomKeyService* keys_for_test_ = nullptr;
};

TEST(AomByzantine, EquivocatingSequencerCannotSplitDelivery) {
    // Build a deployment manually with the equivocating switch.
    sim::Simulator sim;
    sim::Network net(sim, 17);
    net.set_default_link(sim::datacenter_link());
    crypto::TrustRoot root(crypto::CryptoMode::kReal, 5);
    AomKeyService keys(6);

    GroupConfig group;
    group.group = Deployment::kGroup;
    group.variant = AuthVariant::kHmacVector;
    group.trust = NetworkTrust::kByzantine;
    group.f = 1;
    for (int i = 0; i < 4; ++i) group.receivers.push_back(Deployment::kReceiverBase + static_cast<NodeId>(i));

    EquivocatingSwitch sw(SequencerConfig{}, root.provision(Deployment::kSwitchBase), &keys);
    sw.group_receivers_ = group.receivers;
    sw.keys_for_test_ = &keys;
    net.add_node(sw, Deployment::kSwitchBase);
    sw.install_group(group, 1);

    std::vector<std::unique_ptr<testutil::HostNode>> hosts;
    for (int i = 0; i < 4; ++i) {
        auto host = std::make_unique<testutil::HostNode>(
            root.provision(Deployment::kReceiverBase + static_cast<NodeId>(i)));
        net.add_node(*host, Deployment::kReceiverBase + static_cast<NodeId>(i));
        host->init_receiver(group, &keys);
        host->receiver().start_epoch(1, Deployment::kSwitchBase);
        hosts.push_back(std::move(host));
    }

    testutil::SenderNode sender(root.provision(Deployment::kSenderId));
    net.add_node(sender, Deployment::kSenderId);
    DataPacket pkt;
    pkt.group = group.group;
    pkt.payload = to_bytes("honest payload");
    pkt.digest = crypto::sha256(pkt.payload);
    net.send(Deployment::kSenderId, Deployment::kSwitchBase, pkt.serialize());
    sim.run_until(sim::kSecond);

    // No correct receiver may deliver the equivocated content: the victim's
    // copy can never gather 2f+1 matching confirms.
    for (auto& host : hosts) {
        for (const auto& del : host->deliveries) {
            if (del.kind == Delivery::Kind::kMessage) {
                EXPECT_EQ(to_string(del.payload), "honest payload");
            }
        }
    }
    // The three non-victim receivers deliver the honest message.
    int delivered = 0;
    for (int i = 1; i < 4; ++i) {
        for (const auto& del : hosts[static_cast<std::size_t>(i)]->deliveries) {
            if (del.kind == Delivery::Kind::kMessage) ++delivered;
        }
    }
    EXPECT_EQ(delivered, 3);
}

TEST(AomByzantine, PkVariantWithConfirms) {
    Deployment d(4, AuthVariant::kPublicKey, NetworkTrust::kByzantine, 1);
    for (int i = 0; i < 10; ++i) d.sender->send_payload(to_bytes("pk" + std::to_string(i)));
    d.sim.run();
    for (auto& host : d.hosts) {
        std::size_t messages = 0;
        for (const auto& del : host->deliveries) {
            if (del.kind == Delivery::Kind::kMessage) {
                ++messages;
                EXPECT_GE(del.cert.confirms.size(), 3u);
                EXPECT_TRUE(verify_cert(del.cert, host->receiver().verify_context()));
            }
        }
        EXPECT_EQ(messages, 10u);
    }
}

}  // namespace
}  // namespace neo::aom
