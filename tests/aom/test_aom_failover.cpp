// Sequencer failover through the configuration service (§4.2, §6.4).
#include <gtest/gtest.h>

#include "aom_test_util.hpp"

namespace neo::aom {
namespace {

using testutil::Deployment;

Deployment make_two_switch() {
    return Deployment(4, AuthVariant::kHmacVector, NetworkTrust::kCrashOnly, 1,
                      crypto::CryptoMode::kReal, /*n_switches=*/2);
}

void request_failover(Deployment& d, int host_idx, EpochNum next_epoch) {
    FailoverRequest req;
    req.sender = Deployment::kReceiverBase + static_cast<NodeId>(host_idx);
    req.group = Deployment::kGroup;
    req.next_epoch = next_epoch;
    d.net.send(req.sender, Deployment::kConfigId, req.serialize());
}

TEST(AomFailover, QuorumOfRequestsTriggersFailover) {
    Deployment d = make_two_switch();
    EXPECT_EQ(d.config->current_sequencer(Deployment::kGroup), d.switches[0]->id());

    request_failover(d, 0, 2);
    request_failover(d, 1, 2);  // f+1 = 2 distinct requesters
    d.sim.run();

    EXPECT_EQ(d.config->failovers_performed(), 1u);
    EXPECT_EQ(d.config->current_sequencer(Deployment::kGroup), d.switches[1]->id());
    EXPECT_EQ(d.config->current_epoch(Deployment::kGroup), 2u);
    EXPECT_TRUE(d.switches[1]->serves_group(Deployment::kGroup));
    EXPECT_FALSE(d.switches[0]->serves_group(Deployment::kGroup));
}

TEST(AomFailover, SingleRequestInsufficient) {
    Deployment d = make_two_switch();
    request_failover(d, 0, 2);
    d.sim.run();
    EXPECT_EQ(d.config->failovers_performed(), 0u);
    EXPECT_EQ(d.config->current_epoch(Deployment::kGroup), 1u);
}

TEST(AomFailover, DuplicateRequestsFromSameNodeInsufficient) {
    Deployment d = make_two_switch();
    request_failover(d, 0, 2);
    request_failover(d, 0, 2);
    request_failover(d, 0, 2);
    d.sim.run();
    EXPECT_EQ(d.config->failovers_performed(), 0u);
}

TEST(AomFailover, NonMemberRequestsIgnored) {
    Deployment d = make_two_switch();
    FailoverRequest req;
    req.sender = Deployment::kSenderId;  // not a receiver
    req.group = Deployment::kGroup;
    req.next_epoch = 2;
    d.net.send(Deployment::kSenderId, Deployment::kConfigId, req.serialize());
    request_failover(d, 0, 2);
    d.sim.run();
    EXPECT_EQ(d.config->failovers_performed(), 0u);
}

TEST(AomFailover, SpoofedSenderIgnored) {
    Deployment d = make_two_switch();
    FailoverRequest req;
    req.sender = Deployment::kReceiverBase + 1;  // claims to be host 1
    req.group = Deployment::kGroup;
    req.next_epoch = 2;
    // ...but actually sent from host 0's address.
    d.net.send(Deployment::kReceiverBase, Deployment::kConfigId, req.serialize());
    request_failover(d, 0, 2);
    d.sim.run();
    EXPECT_EQ(d.config->failovers_performed(), 0u);
}

TEST(AomFailover, StaleEpochRequestsIgnored) {
    Deployment d = make_two_switch();
    request_failover(d, 0, 1);  // current epoch, not next
    request_failover(d, 1, 1);
    d.sim.run();
    EXPECT_EQ(d.config->failovers_performed(), 0u);
}

TEST(AomFailover, AnnouncementReachesReceivers) {
    Deployment d = make_two_switch();
    std::vector<std::pair<EpochNum, NodeId>> announcements;
    d.hosts[2]->receiver().set_on_new_epoch(
        [&](EpochNum e, NodeId s) { announcements.emplace_back(e, s); });
    request_failover(d, 0, 2);
    request_failover(d, 1, 2);
    d.sim.run();
    ASSERT_EQ(announcements.size(), 1u);
    EXPECT_EQ(announcements[0].first, 2u);
    EXPECT_EQ(announcements[0].second, d.switches[1]->id());
    EXPECT_EQ(d.hosts[2]->receiver().announced_sequencer(2), d.switches[1]->id());
}

TEST(AomFailover, TrafficFlowsAfterFailover) {
    Deployment d = make_two_switch();
    d.sender->send_payload(to_bytes("before"));
    d.sim.run();

    d.switches[0]->set_stall(true);
    request_failover(d, 0, 2);
    request_failover(d, 1, 2);
    d.sim.run();

    // Receivers activate the announced epoch (the protocol layer does this
    // after its view change; here we do it directly).
    for (auto& host : d.hosts) {
        host->receiver().start_epoch(2, *host->receiver().announced_sequencer(2));
    }
    d.sender->send_payload(to_bytes("after"));
    d.sim.run();

    for (auto& host : d.hosts) {
        ASSERT_EQ(host->deliveries.size(), 2u);
        EXPECT_EQ(to_string(host->deliveries[1].payload), "after");
        EXPECT_EQ(host->deliveries[1].epoch, 2u);
        EXPECT_EQ(host->deliveries[1].seq, 1u);  // sequence restarts per epoch
    }
}

TEST(AomFailover, ReconfigurationDelayApplies) {
    Deployment d = make_two_switch();
    request_failover(d, 0, 2);
    request_failover(d, 1, 2);
    // Default reconfig delay is 50 ms; at 10 ms nothing has changed yet.
    d.sim.run_until(10 * sim::kMillisecond);
    EXPECT_EQ(d.config->current_epoch(Deployment::kGroup), 1u);
    d.sim.run();
    EXPECT_EQ(d.config->current_epoch(Deployment::kGroup), 2u);
}

TEST(AomFailover, ForceFailoverCyclesThroughPool) {
    Deployment d = make_two_switch();
    d.config->force_failover(Deployment::kGroup);
    d.sim.run();
    EXPECT_EQ(d.config->current_sequencer(Deployment::kGroup), d.switches[1]->id());
    d.config->force_failover(Deployment::kGroup);
    d.sim.run();
    EXPECT_EQ(d.config->current_sequencer(Deployment::kGroup), d.switches[0]->id());
    EXPECT_EQ(d.config->current_epoch(Deployment::kGroup), 3u);
}

TEST(AomFailover, RouteLookupFollowsFailover) {
    Deployment d = make_two_switch();
    EXPECT_EQ(d.sender->aom().route(), d.switches[0]->id());
    d.config->force_failover(Deployment::kGroup);
    d.sim.run();
    EXPECT_EQ(d.sender->aom().route(), d.switches[1]->id());
}

}  // namespace
}  // namespace neo::aom
