// Fuzz-style robustness: random and mutated packets must never crash a
// node, and must never be delivered as authentic messages.
#include <gtest/gtest.h>

#include "aom_test_util.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace neo::aom {
namespace {

using testutil::Deployment;

class AomFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AomFuzz, RandomBytesToReceiversNeverDeliver) {
    Deployment d(4, AuthVariant::kHmacVector);
    Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        Bytes junk = rng.bytes(1 + rng.uniform(200));
        // Bias the first byte towards valid aom kinds half the time.
        if (rng.chance(0.5) && !junk.empty()) {
            junk[0] = static_cast<std::uint8_t>(1 + rng.uniform(7));
        }
        d.net.send(Deployment::kSenderId, Deployment::kReceiverBase + rng.uniform(4) % 4, junk);
    }
    d.sim.run_until(sim::kSecond);
    for (auto& host : d.hosts) {
        for (const auto& del : host->deliveries) {
            EXPECT_NE(del.kind, Delivery::Kind::kMessage) << "fuzz input delivered!";
        }
    }
}

TEST_P(AomFuzz, RandomBytesToSwitchNeverSequence) {
    Deployment d(4, AuthVariant::kPublicKey);
    Rng rng(GetParam() + 1000);
    for (int i = 0; i < 2000; ++i) {
        Bytes junk = rng.bytes(1 + rng.uniform(120));
        if (rng.chance(0.5) && !junk.empty()) {
            junk[0] = static_cast<std::uint8_t>(Wire::kData);
        }
        d.net.send(Deployment::kSenderId, Deployment::kSwitchBase, junk);
    }
    d.sim.run_until(sim::kSecond);
    EXPECT_EQ(d.switches[0]->packets_sequenced(), 0u);
    for (auto& host : d.hosts) EXPECT_TRUE(host->deliveries.empty());
}

TEST_P(AomFuzz, MutatedLegitimatePacketsRejected) {
    // Take real sequencer output, flip random bits in flight, and require
    // that corrupted packets never surface as deliveries with wrong content.
    Deployment d(4, AuthVariant::kHmacVector);
    auto rng = std::make_shared<Rng>(GetParam() + 2000);
    d.net.set_tamper([rng](NodeId from, NodeId, Bytes& data) {
        if (from == Deployment::kSwitchBase && !data.empty() && rng->chance(0.5)) {
            data[rng->uniform(data.size())] ^= static_cast<std::uint8_t>(1 + rng->uniform(255));
        }
        return sim::TamperAction::kDeliver;
    });
    for (int i = 0; i < 40; ++i) d.sender->send_payload(to_bytes("p" + std::to_string(i)));
    d.sim.run_until(sim::kSecond);

    for (auto& host : d.hosts) {
        for (const auto& del : host->deliveries) {
            if (del.kind != Delivery::Kind::kMessage) continue;
            // Whatever was delivered must be one of the genuine payloads and
            // internally consistent with its certificate.
            std::string s = to_string(del.payload);
            EXPECT_EQ(s.rfind('p', 0), 0u) << "corrupted payload delivered: " << s;
            EXPECT_EQ(crypto::sha256(del.payload), del.cert.digest);
        }
    }
}

TEST_P(AomFuzz, MutatedCertificatesNeverVerify) {
    Deployment d(4, AuthVariant::kPublicKey);
    d.sender->send_payload(to_bytes("target"));
    d.sim.run();
    OrderingCert cert = d.hosts[0]->deliveries.at(0).cert;
    Bytes wire = cert.serialize();
    Rng rng(GetParam() + 3000);

    int verified_mutants = 0;
    for (int i = 0; i < 500; ++i) {
        Bytes mutant = wire;
        int flips = 1 + static_cast<int>(rng.uniform(4));
        for (int f = 0; f < flips; ++f) {
            mutant[rng.uniform(mutant.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
        }
        if (mutant == wire) continue;
        try {
            OrderingCert parsed = OrderingCert::parse_bytes(mutant);
            if (verify_cert(parsed, d.hosts[1]->receiver().verify_context())) {
                // Only acceptable if the mutation did not touch any
                // authenticated field (e.g. flipped bits in ignored padding
                // do not exist in this format — so this should not happen).
                ++verified_mutants;
            }
        } catch (const CodecError&) {
            // Malformed: correctly rejected at parse time.
        }
    }
    EXPECT_EQ(verified_mutants, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AomFuzz, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace neo::aom
