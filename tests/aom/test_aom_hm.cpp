// End-to-end tests of the HMAC-vector aom variant (§4.3).
#include <gtest/gtest.h>

#include "aom_test_util.hpp"
#include "crypto/sha256.hpp"

namespace neo::aom {
namespace {

using testutil::Deployment;

TEST(AomHm, SingleMessageDeliveredToAllReceivers) {
    Deployment d(4, AuthVariant::kHmacVector);
    d.sender->send_payload(to_bytes("hello"));
    d.sim.run();
    for (auto& host : d.hosts) {
        ASSERT_EQ(host->deliveries.size(), 1u);
        const Delivery& del = host->deliveries[0];
        EXPECT_EQ(del.kind, Delivery::Kind::kMessage);
        EXPECT_EQ(del.seq, 1u);
        EXPECT_EQ(del.epoch, 1u);
        EXPECT_EQ(to_string(del.payload), "hello");
    }
}

TEST(AomHm, MessagesDeliveredInSequenceOrderEverywhere) {
    Deployment d(4, AuthVariant::kHmacVector);
    // Space sends beyond the link jitter so switch arrival order (and thus
    // the assigned sequence) matches send order.
    for (int i = 0; i < 50; ++i) {
        d.sim.at(i * 5 * sim::kMicrosecond, [&d, i] {
            d.sender->send_payload(to_bytes("msg-" + std::to_string(i)));
        });
    }
    d.sim.run();
    for (auto& host : d.hosts) {
        ASSERT_EQ(host->deliveries.size(), 50u);
        for (std::size_t i = 0; i < 50; ++i) {
            EXPECT_EQ(host->deliveries[i].seq, i + 1);
            EXPECT_EQ(to_string(host->deliveries[i].payload), "msg-" + std::to_string(i));
        }
    }
}

TEST(AomHm, OrderingPropertyUnderConcurrentSenders) {
    Deployment d(4, AuthVariant::kHmacVector);
    // Second sender racing the first: all receivers must still see the SAME
    // order (whatever the switch assigned).
    testutil::SenderNode sender2(d.root.provision(301));
    d.net.add_node(sender2, 301);
    sender2.init_sender(Deployment::kGroup, d.config.get());

    for (int i = 0; i < 20; ++i) {
        d.sender->send_payload(to_bytes("a" + std::to_string(i)));
        sender2.send_payload(to_bytes("b" + std::to_string(i)));
    }
    d.sim.run();
    ASSERT_EQ(d.hosts[0]->deliveries.size(), 40u);
    for (auto& host : d.hosts) {
        ASSERT_EQ(host->deliveries.size(), 40u);
        for (std::size_t i = 0; i < 40; ++i) {
            EXPECT_EQ(host->deliveries[i].payload, d.hosts[0]->deliveries[i].payload);
            EXPECT_EQ(host->deliveries[i].seq, d.hosts[0]->deliveries[i].seq);
        }
    }
}

TEST(AomHm, CertificateVerifiesLocally) {
    Deployment d(4, AuthVariant::kHmacVector);
    d.sender->send_payload(to_bytes("certified"));
    d.sim.run();
    const OrderingCert& cert = d.hosts[2]->deliveries.at(0).cert;
    EXPECT_EQ(cert.macs.size(), 4u);
    EXPECT_TRUE(verify_cert(cert, d.hosts[2]->receiver().verify_context()));
}

TEST(AomHm, CertificateIsTransferable) {
    // A certificate delivered at receiver 0 must verify at receiver 3
    // (each checks its own MAC-vector entry) — §3.2 transferable auth.
    Deployment d(4, AuthVariant::kHmacVector);
    d.sender->send_payload(to_bytes("transfer me"));
    d.sim.run();
    OrderingCert cert = d.hosts[0]->deliveries.at(0).cert;
    Bytes wire = cert.serialize();
    OrderingCert reparsed = OrderingCert::parse_bytes(wire);
    for (auto& host : d.hosts) {
        EXPECT_TRUE(verify_cert(reparsed, host->receiver().verify_context()));
    }
}

TEST(AomHm, TamperedCertificateRejected) {
    Deployment d(4, AuthVariant::kHmacVector);
    d.sender->send_payload(to_bytes("payload"));
    d.sim.run();
    OrderingCert cert = d.hosts[0]->deliveries.at(0).cert;

    OrderingCert bad_seq = cert;
    bad_seq.seq += 1;
    EXPECT_FALSE(verify_cert(bad_seq, d.hosts[1]->receiver().verify_context()));

    OrderingCert bad_payload = cert;
    bad_payload.payload = to_bytes("forged!");
    EXPECT_FALSE(verify_cert(bad_payload, d.hosts[1]->receiver().verify_context()));

    OrderingCert bad_mac = cert;
    bad_mac.macs[1] ^= 1;
    EXPECT_FALSE(verify_cert(bad_mac, d.hosts[1]->receiver().verify_context()));

    OrderingCert bad_epoch = cert;
    bad_epoch.epoch = 99;  // unknown epoch -> no sequencer -> reject
    EXPECT_FALSE(verify_cert(bad_epoch, d.hosts[1]->receiver().verify_context()));
}

TEST(AomHm, InFlightTamperingDetected) {
    Deployment d(4, AuthVariant::kHmacVector);
    // Flip payload bytes on everything the switch sends to receiver 0.
    d.net.set_tamper([](NodeId from, NodeId to, Bytes& data) {
        if (from == Deployment::kSwitchBase && to == Deployment::kReceiverBase &&
            data.size() > 60) {
            data.back() ^= 0xff;
        }
        return sim::TamperAction::kDeliver;
    });
    d.sender->send_payload(to_bytes("integrity"));
    d.sim.run_until(80 * sim::kMicrosecond);
    // Receiver 0 must not deliver a corrupted message...
    for (const auto& del : d.hosts[0]->deliveries) {
        if (del.kind == Delivery::Kind::kMessage) {
            EXPECT_EQ(to_string(del.payload), "integrity");
        }
    }
    // ...while untampered receivers deliver normally.
    ASSERT_EQ(d.hosts[1]->deliveries.size(), 1u);
    EXPECT_EQ(to_string(d.hosts[1]->deliveries[0].payload), "integrity");
}

TEST(AomHm, LargerGroupUsesSubgroupPackets) {
    Deployment d(10, AuthVariant::kHmacVector);  // 3 subgroups
    d.sender->send_payload(to_bytes("wide"));
    d.sim.run();
    for (auto& host : d.hosts) {
        ASSERT_EQ(host->deliveries.size(), 1u);
        // Full vector assembled from 3 subgroup packets.
        EXPECT_EQ(host->deliveries[0].cert.macs.size(), 10u);
        EXPECT_TRUE(verify_cert(host->deliveries[0].cert, host->receiver().verify_context()));
    }
    // Each receiver got 3 packets for the one message.
    EXPECT_EQ(d.net.delivered_to(Deployment::kReceiverBase), 3u);
}

TEST(AomHm, SixtyFourReceiversSupported) {
    Deployment d(64, AuthVariant::kHmacVector);
    d.sender->send_payload(to_bytes("max"));
    d.sim.run();
    for (auto& host : d.hosts) {
        ASSERT_EQ(host->deliveries.size(), 1u);
        EXPECT_EQ(host->deliveries[0].cert.macs.size(), 64u);
    }
    EXPECT_EQ(d.net.delivered_to(Deployment::kReceiverBase), 16u);  // 16 subgroups
}

TEST(AomHm, DropNotificationOnGap) {
    Deployment d(4, AuthVariant::kHmacVector);
    // Drop everything the switch sends to receiver 0 for the first message.
    bool drop_active = true;
    d.net.set_tamper([&drop_active](NodeId from, NodeId to, Bytes&) {
        if (drop_active && from == Deployment::kSwitchBase && to == Deployment::kReceiverBase) {
            return sim::TamperAction::kDrop;
        }
        return sim::TamperAction::kDeliver;
    });
    d.sender->send_payload(to_bytes("lost"));
    d.sim.run_until(10 * sim::kMicrosecond);
    drop_active = false;
    d.sender->send_payload(to_bytes("second"));
    d.sim.run();

    // Receiver 0: drop-notification for seq 1, then message 2.
    ASSERT_EQ(d.hosts[0]->deliveries.size(), 2u);
    EXPECT_EQ(d.hosts[0]->deliveries[0].kind, Delivery::Kind::kDropNotification);
    EXPECT_EQ(d.hosts[0]->deliveries[0].seq, 1u);
    EXPECT_EQ(d.hosts[0]->deliveries[1].kind, Delivery::Kind::kMessage);
    EXPECT_EQ(to_string(d.hosts[0]->deliveries[1].payload), "second");
    // Receiver 1 got both messages.
    ASSERT_EQ(d.hosts[1]->deliveries.size(), 2u);
    EXPECT_EQ(d.hosts[1]->deliveries[0].kind, Delivery::Kind::kMessage);
}

TEST(AomHm, NoDropNotificationWithoutLaterTraffic) {
    // A hole can only be detected relative to later packets; with none, the
    // receiver must stay quiet (unreliability property, not false drops).
    Deployment d(4, AuthVariant::kHmacVector);
    d.net.set_tamper([](NodeId from, NodeId, Bytes&) {
        return from == Deployment::kSwitchBase ? sim::TamperAction::kDrop
                                               : sim::TamperAction::kDeliver;
    });
    d.sender->send_payload(to_bytes("vanishes"));
    d.sim.run_until(sim::kSecond);
    EXPECT_TRUE(d.hosts[0]->deliveries.empty());
}

TEST(AomHm, ReorderedSubgroupPacketsStillAssemble) {
    // Heavy jitter reorders the three subgroup packets; assembly must cope.
    Deployment d(12, AuthVariant::kHmacVector);
    sim::LinkConfig jittery = d.net.default_link();
    jittery.jitter = 30 * sim::kMicrosecond;
    d.net.set_default_link(jittery);
    for (int i = 0; i < 10; ++i) d.sender->send_payload(to_bytes("m" + std::to_string(i)));
    d.sim.run();
    for (auto& host : d.hosts) {
        std::size_t messages = 0;
        SeqNum prev = 0;
        for (const auto& del : host->deliveries) {
            if (del.kind == Delivery::Kind::kMessage) {
                ++messages;
                EXPECT_GT(del.seq, prev);
                prev = del.seq;
            }
        }
        EXPECT_EQ(messages + (host->deliveries.size() - messages), host->deliveries.size());
        EXPECT_GE(messages, 8u);  // a few may time out into drops under jitter
    }
}

TEST(AomHm, UnknownGroupPacketsIgnoredBySwitch) {
    Deployment d(4, AuthVariant::kHmacVector);
    DataPacket pkt;
    pkt.group = 999;  // not registered
    pkt.digest = crypto::sha256(to_bytes("x"));
    pkt.payload = to_bytes("x");
    d.net.send(Deployment::kSenderId, Deployment::kSwitchBase, pkt.serialize());
    d.sim.run();
    for (auto& host : d.hosts) EXPECT_TRUE(host->deliveries.empty());
}

TEST(AomHm, MalformedPacketToSwitchIgnored) {
    Deployment d(4, AuthVariant::kHmacVector);
    Bytes garbage{static_cast<std::uint8_t>(Wire::kData), 0x01, 0x02};
    d.net.send(Deployment::kSenderId, Deployment::kSwitchBase, garbage);
    d.sender->send_payload(to_bytes("after-garbage"));
    d.sim.run();
    ASSERT_EQ(d.hosts[0]->deliveries.size(), 1u);
    EXPECT_EQ(d.hosts[0]->deliveries[0].seq, 1u);  // garbage consumed no seq
}

TEST(AomHm, SwitchLatencyReflectsPipelinePasses) {
    // Group of 4 (1 subgroup) vs 64 (16 subgroups): the bigger group's
    // switch service time is ~16x, showing up as added delivery latency
    // under load and lower max throughput (Fig 6's decay).
    Deployment small(4, AuthVariant::kHmacVector);
    for (int i = 0; i < 200; ++i) small.sender->send_payload(to_bytes("s"));
    small.sim.run();
    Deployment big(64, AuthVariant::kHmacVector);
    for (int i = 0; i < 200; ++i) big.sender->send_payload(to_bytes("b"));
    big.sim.run();
    // All 200 delivered in both; the big group simply takes longer.
    EXPECT_EQ(small.hosts[0]->deliveries.size(), 200u);
    EXPECT_EQ(big.hosts[0]->deliveries.size(), 200u);
    EXPECT_EQ(small.switches[0]->packets_sequenced(), 200u);
    EXPECT_EQ(big.switches[0]->packets_sequenced(), 200u);
}

TEST(AomHm, StalledSwitchDeliversNothing) {
    Deployment d(4, AuthVariant::kHmacVector);
    d.switches[0]->set_stall(true);
    d.sender->send_payload(to_bytes("black hole"));
    d.sim.run_until(sim::kSecond);
    for (auto& host : d.hosts) EXPECT_TRUE(host->deliveries.empty());
}

}  // namespace
}  // namespace neo::aom
