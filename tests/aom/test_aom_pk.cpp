// End-to-end tests of the public-key aom variant with hash chaining (§4.4).
#include <gtest/gtest.h>

#include "aom_test_util.hpp"
#include "crypto/sha256.hpp"

namespace neo::aom {
namespace {

using testutil::Deployment;

TEST(AomPk, SingleMessageDelivered) {
    Deployment d(4, AuthVariant::kPublicKey);
    d.sender->send_payload(to_bytes("pk hello"));
    d.sim.run();
    for (auto& host : d.hosts) {
        ASSERT_EQ(host->deliveries.size(), 1u);
        EXPECT_EQ(to_string(host->deliveries[0].payload), "pk hello");
        EXPECT_EQ(host->deliveries[0].seq, 1u);
    }
    EXPECT_EQ(d.switches[0]->signatures_generated(), 1u);
}

TEST(AomPk, StreamDeliveredInOrder) {
    Deployment d(4, AuthVariant::kPublicKey);
    // Space sends beyond the link jitter so switch arrival order (and thus
    // the assigned sequence) matches send order.
    for (int i = 0; i < 100; ++i) {
        d.sim.at(i * 5 * sim::kMicrosecond, [&d, i] {
            d.sender->send_payload(to_bytes("m" + std::to_string(i)));
        });
    }
    d.sim.run();
    for (auto& host : d.hosts) {
        ASSERT_EQ(host->deliveries.size(), 100u);
        for (std::size_t i = 0; i < 100; ++i) {
            EXPECT_EQ(host->deliveries[i].seq, i + 1);
            EXPECT_EQ(to_string(host->deliveries[i].payload), "m" + std::to_string(i));
        }
    }
}

TEST(AomPk, OnePacketPerReceiverRegardlessOfGroupSize) {
    // PK performance is group-size agnostic (§4.4): one packet per receiver.
    Deployment d(12, AuthVariant::kPublicKey);
    d.sender->send_payload(to_bytes("x"));
    d.sim.run();
    EXPECT_EQ(d.net.delivered_to(Deployment::kReceiverBase), 1u);
}

TEST(AomPk, CertificateVerifiesAndTransfers) {
    Deployment d(4, AuthVariant::kPublicKey);
    d.sender->send_payload(to_bytes("cert"));
    d.sim.run();
    OrderingCert cert = d.hosts[0]->deliveries.at(0).cert;
    ASSERT_FALSE(cert.chain.empty());
    ASSERT_FALSE(cert.signature.empty());
    for (auto& host : d.hosts) {
        EXPECT_TRUE(verify_cert(cert, host->receiver().verify_context()));
    }
}

TEST(AomPk, TamperedCertificateRejected) {
    Deployment d(4, AuthVariant::kPublicKey);
    d.sender->send_payload(to_bytes("sealed"));
    d.sim.run();
    OrderingCert cert = d.hosts[0]->deliveries.at(0).cert;

    OrderingCert bad_payload = cert;
    bad_payload.payload = to_bytes("forged");
    EXPECT_FALSE(verify_cert(bad_payload, d.hosts[1]->receiver().verify_context()));

    OrderingCert bad_sig = cert;
    bad_sig.signature[3] ^= 1;
    EXPECT_FALSE(verify_cert(bad_sig, d.hosts[1]->receiver().verify_context()));

    OrderingCert bad_chain = cert;
    bad_chain.chain[0].prev_chain[0] ^= 1;
    EXPECT_FALSE(verify_cert(bad_chain, d.hosts[1]->receiver().verify_context()));

    OrderingCert empty_chain = cert;
    empty_chain.chain.clear();
    EXPECT_FALSE(verify_cert(empty_chain, d.hosts[1]->receiver().verify_context()));
}

// Force skipped signatures by draining the precompute stock, then check the
// hash-chain batch delivery (§4.4's signing-ratio controller).
SequencerConfig scarce_signer() {
    SequencerConfig cfg;
    cfg.precompute.table_capacity = 4;
    cfg.precompute.low_water_mark = 2;
    cfg.precompute.refill_per_sec = 50'000.0;  // 1 entry per 20us
    return cfg;
}

TEST(AomPk, UnsignedRunDeliveredViaChainOnNextSignature) {
    Deployment d(4, AuthVariant::kPublicKey, NetworkTrust::kCrashOnly, 1,
                 crypto::CryptoMode::kReal, 1, scarce_signer());
    // Burst of messages: the first few consume the stock, the rest ride the
    // hash chain until the stock refills.
    for (int i = 0; i < 30; ++i) d.sender->send_payload(to_bytes("b" + std::to_string(i)));
    d.sim.run();
    EXPECT_GT(d.switches[0]->signatures_skipped(), 0u);
    EXPECT_GT(d.switches[0]->signatures_generated(), 0u);
    for (auto& host : d.hosts) {
        std::size_t messages = 0;
        for (const auto& del : host->deliveries) {
            if (del.kind == Delivery::Kind::kMessage) {
                ++messages;
                EXPECT_TRUE(verify_cert(del.cert, host->receiver().verify_context()))
                    << "seq " << del.seq;
            }
        }
        EXPECT_EQ(messages, 30u);
    }
}

TEST(AomPk, UnsignedCertificatesCarryChainToSignature) {
    Deployment d(4, AuthVariant::kPublicKey, NetworkTrust::kCrashOnly, 1,
                 crypto::CryptoMode::kReal, 1, scarce_signer());
    for (int i = 0; i < 30; ++i) d.sender->send_payload(to_bytes("c" + std::to_string(i)));
    d.sim.run();
    bool saw_multilink = false;
    for (const auto& del : d.hosts[0]->deliveries) {
        if (del.cert.chain.size() > 1) {
            saw_multilink = true;
            // Chain must start at the message's own seq and be consecutive.
            EXPECT_EQ(del.cert.chain.front().seq, del.seq);
            // And must still verify everywhere after reserialisation.
            OrderingCert reparsed = OrderingCert::parse_bytes(del.cert.serialize());
            EXPECT_TRUE(verify_cert(reparsed, d.hosts[3]->receiver().verify_context()));
        }
    }
    EXPECT_TRUE(saw_multilink);
}

TEST(AomPk, IdleCheckpointRetroSignsChainHead) {
    SequencerConfig cfg = scarce_signer();
    cfg.checkpoint_idle_ns = 50 * sim::kMicrosecond;
    Deployment d(4, AuthVariant::kPublicKey, NetworkTrust::kCrashOnly, 1,
                 crypto::CryptoMode::kReal, 1, cfg);
    // Exhaust stock, then stop sending: the tail of the burst is unsigned
    // and must be released by an idle checkpoint rather than stall forever.
    for (int i = 0; i < 10; ++i) d.sender->send_payload(to_bytes("t" + std::to_string(i)));
    d.sim.run();
    for (auto& host : d.hosts) {
        std::size_t messages = 0;
        for (const auto& del : host->deliveries) {
            if (del.kind == Delivery::Kind::kMessage) ++messages;
        }
        EXPECT_EQ(messages, 10u) << "burst tail stalled without checkpoint";
    }
}

TEST(AomPk, ForgedUnsignedPacketNeverDelivered) {
    Deployment d(4, AuthVariant::kPublicKey);
    // Inject a fake "sequenced" packet claiming seq 1 before the real one.
    PkPacket fake;
    fake.group = Deployment::kGroup;
    fake.epoch = 1;
    fake.seq = 1;
    fake.payload = to_bytes("evil");
    fake.digest = crypto::sha256(fake.payload);
    fake.prev_chain = chain_genesis(Deployment::kGroup, 1);
    d.net.send(Deployment::kSenderId, Deployment::kReceiverBase, fake.serialize());
    d.sim.run_until(5 * sim::kMicrosecond);
    d.sender->send_payload(to_bytes("honest"));
    d.sim.run();

    // The receiver that saw the forgery: the signed honest packet replaces
    // the fake (signature wins), so "evil" must never be delivered.
    for (const auto& del : d.hosts[0]->deliveries) {
        if (del.kind == Delivery::Kind::kMessage) {
            EXPECT_NE(to_string(del.payload), "evil");
        }
    }
    bool delivered_honest = false;
    for (const auto& del : d.hosts[0]->deliveries) {
        if (del.kind == Delivery::Kind::kMessage && to_string(del.payload) == "honest") {
            delivered_honest = true;
        }
    }
    EXPECT_TRUE(delivered_honest);
}

TEST(AomPk, ForgedSignatureRejected) {
    Deployment d(4, AuthVariant::kPublicKey);
    PkPacket fake;
    fake.group = Deployment::kGroup;
    fake.epoch = 1;
    fake.seq = 1;
    fake.payload = to_bytes("evil");
    fake.digest = crypto::sha256(fake.payload);
    fake.prev_chain = chain_genesis(Deployment::kGroup, 1);
    fake.signature = Bytes(64, 0x42);
    d.net.send(Deployment::kSenderId, Deployment::kReceiverBase, fake.serialize());
    d.sim.run_until(sim::kMillisecond);
    EXPECT_TRUE(d.hosts[0]->deliveries.empty());
    EXPECT_GE(d.hosts[0]->receiver().rejected_packets(), 1u);
}

TEST(AomPk, DropNotificationOnGap) {
    Deployment d(4, AuthVariant::kPublicKey);
    bool drop_active = true;
    d.net.set_tamper([&drop_active](NodeId from, NodeId to, Bytes&) {
        if (drop_active && from == Deployment::kSwitchBase && to == Deployment::kReceiverBase) {
            return sim::TamperAction::kDrop;
        }
        return sim::TamperAction::kDeliver;
    });
    d.sender->send_payload(to_bytes("gone"));
    d.sim.run_until(10 * sim::kMicrosecond);
    drop_active = false;
    d.sender->send_payload(to_bytes("kept"));
    d.sim.run();

    ASSERT_EQ(d.hosts[0]->deliveries.size(), 2u);
    EXPECT_EQ(d.hosts[0]->deliveries[0].kind, Delivery::Kind::kDropNotification);
    EXPECT_EQ(d.hosts[0]->deliveries[0].seq, 1u);
    EXPECT_EQ(to_string(d.hosts[0]->deliveries[1].payload), "kept");
}

TEST(AomPk, LateArrivalAfterGapAuthenticationViaStoredChain) {
    // Packet 1 is delayed (not dropped); packet 2's signature authenticates
    // C_1 via its prev field; when packet 1 finally arrives it must
    // authenticate against the stored chain value and deliver if the gap
    // timer has not fired yet.
    Deployment d(4, AuthVariant::kPublicKey, NetworkTrust::kCrashOnly, 1,
                 crypto::CryptoMode::kReal, 1, SequencerConfig{},
                 ReceiverOptions{.gap_timeout = 10 * sim::kMillisecond});
    // Heavy jitter on the switch->receiver0 link reorders packets; signed
    // later packets then authenticate earlier unsigned ones retroactively
    // through the stored chain values.
    sim::LinkConfig jittery = d.net.default_link();
    jittery.jitter = 200 * sim::kMicrosecond;
    d.net.set_link(Deployment::kSwitchBase, Deployment::kReceiverBase, jittery);
    for (int i = 0; i < 20; ++i) d.sender->send_payload(to_bytes("j" + std::to_string(i)));
    d.sim.run();
    std::size_t messages = 0;
    SeqNum prev = 0;
    for (const auto& del : d.hosts[0]->deliveries) {
        if (del.kind == Delivery::Kind::kMessage) {
            ++messages;
            EXPECT_GT(del.seq, prev);
            prev = del.seq;
        }
    }
    EXPECT_EQ(messages, 20u);  // long gap timeout: all eventually delivered in order
}

TEST(AomPk, OldEpochPacketsIgnoredAfterEpochSwitch) {
    Deployment d(4, AuthVariant::kPublicKey, NetworkTrust::kCrashOnly, 1,
                 crypto::CryptoMode::kReal, 2);
    d.sender->send_payload(to_bytes("epoch1"));
    d.sim.run();
    ASSERT_EQ(d.hosts[0]->deliveries.size(), 1u);

    // Move everyone to epoch 2 on switch 2.
    for (auto& host : d.hosts) host->receiver().start_epoch(2, d.switches[1]->id());
    d.switches[1]->install_group(d.config->group_config(Deployment::kGroup), 2);

    // Old switch still emits epoch-1 packets: ignored.
    d.sender->send_payload(to_bytes("stale"));
    d.sim.run();
    EXPECT_EQ(d.hosts[0]->deliveries.size(), 1u);

    // Traffic through the new switch delivers with seq restarting at 1.
    DataPacket pkt;
    pkt.group = Deployment::kGroup;
    pkt.payload = to_bytes("epoch2");
    pkt.digest = crypto::sha256(pkt.payload);
    d.net.send(Deployment::kSenderId, d.switches[1]->id(), pkt.serialize());
    d.sim.run();
    ASSERT_EQ(d.hosts[0]->deliveries.size(), 2u);
    EXPECT_EQ(d.hosts[0]->deliveries[1].epoch, 2u);
    EXPECT_EQ(d.hosts[0]->deliveries[1].seq, 1u);
}

}  // namespace
}  // namespace neo::aom
