#include "aom/wire.hpp"

#include <gtest/gtest.h>

#include "aom/cert.hpp"
#include "crypto/sha256.hpp"

namespace neo::aom {
namespace {

Digest32 d32(std::uint8_t fill) {
    Digest32 d;
    d.fill(fill);
    return d;
}

template <typename T>
T reparse(const T& msg) {
    Bytes wire = msg.serialize();
    Reader r(BytesView(wire).subspan(1));  // skip kind byte
    return T::parse(r);
}

TEST(AomWire, PeekKind) {
    EXPECT_FALSE(peek_kind({}).has_value());
    Bytes b{0x02, 0xaa};
    EXPECT_EQ(peek_kind(b), 0x02);
    EXPECT_TRUE(is_aom_packet(b));
    Bytes proto{0x20};
    EXPECT_FALSE(is_aom_packet(proto));
}

TEST(AomWire, DataPacketRoundTrip) {
    DataPacket p;
    p.group = 7;
    p.digest = d32(0xab);
    p.payload = to_bytes("request body");
    DataPacket q = reparse(p);
    EXPECT_EQ(q.group, 7u);
    EXPECT_EQ(q.digest, p.digest);
    EXPECT_EQ(q.payload, p.payload);
}

TEST(AomWire, DataPacketKindByte) {
    DataPacket p;
    EXPECT_EQ(p.serialize()[0], static_cast<std::uint8_t>(Wire::kData));
}

TEST(AomWire, HmPacketRoundTrip) {
    HmPacket p;
    p.group = 1;
    p.epoch = 3;
    p.seq = 42;
    p.digest = d32(0x11);
    p.subgroup = 1;
    p.n_subgroups = 2;
    p.macs = {10, 20, 30, 40};
    p.payload = to_bytes("op");
    HmPacket q = reparse(p);
    EXPECT_EQ(q.seq, 42u);
    EXPECT_EQ(q.epoch, 3u);
    EXPECT_EQ(q.subgroup, 1);
    EXPECT_EQ(q.n_subgroups, 2);
    EXPECT_EQ(q.macs, p.macs);
    EXPECT_EQ(q.payload, p.payload);
}

TEST(AomWire, HmPacketRejectsBadSubgroup) {
    HmPacket p;
    p.subgroup = 3;
    p.n_subgroups = 2;  // subgroup >= n_subgroups
    p.macs = {1};
    Bytes wire = p.serialize();
    Reader r(BytesView(wire).subspan(1));
    EXPECT_THROW(HmPacket::parse(r), CodecError);
}

TEST(AomWire, HmPacketRejectsTooManyMacs) {
    // Hand-craft a packet declaring 5 MACs in one subgroup.
    Writer w;
    w.u32(1);
    w.u64(1);
    w.u64(1);
    w.raw(BytesView(d32(0).data(), 32));
    w.u8(0);
    w.u8(1);
    w.u8(5);
    for (int i = 0; i < 5; ++i) w.u32(0);
    w.blob({});
    Reader r(w.bytes());
    EXPECT_THROW(HmPacket::parse(r), CodecError);
}

TEST(AomWire, PkPacketRoundTripUnsigned) {
    PkPacket p;
    p.group = 2;
    p.epoch = 1;
    p.seq = 9;
    p.digest = d32(0x22);
    p.prev_chain = d32(0x33);
    p.payload = to_bytes("pay");
    PkPacket q = reparse(p);
    EXPECT_FALSE(q.checkpoint);
    EXPECT_TRUE(q.signature.empty());
    EXPECT_EQ(q.prev_chain, p.prev_chain);
    EXPECT_EQ(q.payload, p.payload);
}

TEST(AomWire, PkPacketRoundTripSigned) {
    PkPacket p;
    p.seq = 10;
    p.signature = Bytes(64, 0x5a);
    p.payload = to_bytes("x");
    PkPacket q = reparse(p);
    EXPECT_EQ(q.signature, p.signature);
    EXPECT_FALSE(q.checkpoint);
}

TEST(AomWire, CheckpointRoundTrip) {
    PkPacket p;
    p.checkpoint = true;
    p.seq = 12;
    p.digest = d32(0x44);
    p.prev_chain = d32(0x55);
    p.signature = Bytes(64, 0x66);
    EXPECT_EQ(p.serialize()[0], static_cast<std::uint8_t>(Wire::kCheckpoint));
    PkPacket q = reparse(p);
    EXPECT_TRUE(q.checkpoint);
    EXPECT_EQ(q.seq, 12u);
    EXPECT_EQ(q.signature, p.signature);
}

TEST(AomWire, CheckpointMustBeSigned) {
    PkPacket p;
    p.checkpoint = true;
    Bytes wire = p.serialize();
    Reader r(BytesView(wire).subspan(1));
    EXPECT_THROW(PkPacket::parse(r), CodecError);
}

TEST(AomWire, PkPacketRejectsBadSignatureLength) {
    PkPacket p;
    p.signature = Bytes(63, 1);
    p.payload = to_bytes("x");
    Bytes wire = p.serialize();
    Reader r(BytesView(wire).subspan(1));
    EXPECT_THROW(PkPacket::parse(r), CodecError);
}

TEST(AomWire, ConfirmPacketRoundTrip) {
    ConfirmPacket p;
    p.sender = 5;
    p.group = 7;
    p.epoch = 2;
    p.entries.push_back({1, d32(0x01), Bytes(64, 0xaa)});
    p.entries.push_back({2, d32(0x02), Bytes(64, 0xbb)});
    ConfirmPacket q = reparse(p);
    EXPECT_EQ(q.sender, 5u);
    ASSERT_EQ(q.entries.size(), 2u);
    EXPECT_EQ(q.entries[1].seq, 2u);
    EXPECT_EQ(q.entries[1].signature, p.entries[1].signature);
}

TEST(AomWire, FailoverAndNewEpochRoundTrip) {
    FailoverRequest f;
    f.sender = 3;
    f.group = 9;
    f.next_epoch = 4;
    FailoverRequest f2 = reparse(f);
    EXPECT_EQ(f2.sender, 3u);
    EXPECT_EQ(f2.next_epoch, 4u);

    NewEpochAnnouncement a;
    a.group = 9;
    a.epoch = 4;
    a.sequencer = 201;
    NewEpochAnnouncement a2 = reparse(a);
    EXPECT_EQ(a2.sequencer, 201u);
}

TEST(AomWire, AuthInputIsPositional) {
    Digest32 d = d32(1);
    EXPECT_NE(auth_input(1, 2, 3, d), auth_input(1, 2, 4, d));
    EXPECT_NE(auth_input(1, 2, 3, d), auth_input(1, 3, 2, d));
    EXPECT_NE(auth_input(1, 2, 3, d), auth_input(2, 1, 3, d));
}

TEST(AomWire, ChainIsDeterministicAndEpochScoped) {
    Digest32 g1 = chain_genesis(1, 1);
    EXPECT_EQ(g1, chain_genesis(1, 1));
    EXPECT_NE(g1, chain_genesis(1, 2));
    EXPECT_NE(g1, chain_genesis(2, 1));

    Digest32 c1 = chain_next(g1, 1, 1, 1, d32(0x0a));
    Digest32 c1b = chain_next(g1, 1, 1, 1, d32(0x0b));
    EXPECT_NE(c1, c1b);
    Digest32 c2 = chain_next(c1, 1, 1, 2, d32(0x0a));
    EXPECT_NE(c2, c1);
}

TEST(AomWire, TruncatedPacketsThrow) {
    DataPacket p;
    p.payload = to_bytes("full");
    Bytes wire = p.serialize();
    for (std::size_t cut = 1; cut < wire.size(); cut += 7) {
        Reader r(BytesView(wire).subspan(1, cut >= wire.size() - 1 ? wire.size() - 1 : cut));
        EXPECT_THROW(DataPacket::parse(r), CodecError) << cut;
    }
}

TEST(AomCertWire, RoundTripHm) {
    OrderingCert c;
    c.variant = AuthVariant::kHmacVector;
    c.group = 7;
    c.epoch = 1;
    c.seq = 5;
    c.payload = to_bytes("req");
    c.digest = crypto::sha256(c.payload);
    c.macs = {1, 2, 3, 4};
    OrderingCert q = OrderingCert::parse_bytes(c.serialize());
    EXPECT_EQ(q.variant, AuthVariant::kHmacVector);
    EXPECT_EQ(q.macs, c.macs);
    EXPECT_EQ(q.payload, c.payload);
    EXPECT_EQ(q.seq, 5u);
}

TEST(AomCertWire, RoundTripPkWithConfirms) {
    OrderingCert c;
    c.variant = AuthVariant::kPublicKey;
    c.group = 7;
    c.epoch = 2;
    c.seq = 5;
    c.payload = to_bytes("req");
    c.digest = crypto::sha256(c.payload);
    c.chain.push_back({5, c.digest, d32(0x10)});
    c.chain.push_back({6, d32(0x06), d32(0x11)});
    c.signature = Bytes(64, 0x77);
    c.confirms.push_back({1, Bytes(64, 0x01)});
    c.confirms.push_back({2, Bytes(64, 0x02)});
    OrderingCert q = OrderingCert::parse_bytes(c.serialize());
    ASSERT_EQ(q.chain.size(), 2u);
    EXPECT_EQ(q.chain[1].seq, 6u);
    EXPECT_EQ(q.signature, c.signature);
    ASSERT_EQ(q.confirms.size(), 2u);
    EXPECT_EQ(q.confirms[1].node, 2u);
}

TEST(AomCertWire, ParseRejectsBadVariant) {
    OrderingCert c;
    Bytes wire = c.serialize();
    wire[0] = 99;
    EXPECT_THROW(OrderingCert::parse_bytes(wire), CodecError);
}

TEST(AomCertWire, ParseRejectsTrailingGarbage) {
    OrderingCert c;
    Bytes wire = c.serialize();
    wire.push_back(0);
    EXPECT_THROW(OrderingCert::parse_bytes(wire), CodecError);
}

}  // namespace
}  // namespace neo::aom
