#include "apps/btree.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"

namespace neo::app {
namespace {

Bytes k(std::string_view s) { return to_bytes(s); }

TEST(BTree, EmptyTree) {
    BTreeMap t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.get(k("missing")), nullptr);
    EXPECT_FALSE(t.erase(k("missing")));
    EXPECT_TRUE(t.check_invariants());
}

TEST(BTree, PutGetSingle) {
    BTreeMap t;
    EXPECT_TRUE(t.put(k("a"), k("1")));
    ASSERT_NE(t.get(k("a")), nullptr);
    EXPECT_EQ(*t.get(k("a")), k("1"));
    EXPECT_EQ(t.size(), 1u);
}

TEST(BTree, UpdateOverwrites) {
    BTreeMap t;
    EXPECT_TRUE(t.put(k("a"), k("1")));
    EXPECT_FALSE(t.put(k("a"), k("2")));
    EXPECT_EQ(*t.get(k("a")), k("2"));
    EXPECT_EQ(t.size(), 1u);
}

TEST(BTree, ManySequentialInserts) {
    BTreeMap t;
    for (int i = 0; i < 1000; ++i) {
        t.put(k("key" + std::to_string(10000 + i)), k("v" + std::to_string(i)));
    }
    EXPECT_EQ(t.size(), 1000u);
    EXPECT_TRUE(t.check_invariants());
    for (int i = 0; i < 1000; ++i) {
        const Bytes* v = t.get(k("key" + std::to_string(10000 + i)));
        ASSERT_NE(v, nullptr) << i;
        EXPECT_EQ(*v, k("v" + std::to_string(i)));
    }
}

TEST(BTree, ForEachInSortedOrder) {
    BTreeMap t;
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        t.put(rng.bytes(8), rng.bytes(4));
    }
    Bytes prev;
    std::size_t count = 0;
    t.for_each([&](const Bytes& key, const Bytes&) {
        if (count > 0) EXPECT_LT(prev, key);
        prev = key;
        ++count;
    });
    EXPECT_EQ(count, t.size());
}

TEST(BTree, EraseLeafKeys) {
    BTreeMap t;
    for (int i = 0; i < 100; ++i) t.put(k("k" + std::to_string(i)), k("v"));
    for (int i = 0; i < 100; i += 2) EXPECT_TRUE(t.erase(k("k" + std::to_string(i))));
    EXPECT_EQ(t.size(), 50u);
    EXPECT_TRUE(t.check_invariants());
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(t.get(k("k" + std::to_string(i))) != nullptr, i % 2 == 1) << i;
    }
}

TEST(BTree, EraseEverything) {
    BTreeMap t;
    for (int i = 0; i < 300; ++i) t.put(k("x" + std::to_string(i)), k("v"));
    for (int i = 0; i < 300; ++i) {
        EXPECT_TRUE(t.erase(k("x" + std::to_string(i)))) << i;
        EXPECT_TRUE(t.check_invariants()) << i;
    }
    EXPECT_TRUE(t.empty());
}

TEST(BTree, EraseDescendingOrder) {
    BTreeMap t;
    for (int i = 0; i < 300; ++i) t.put(k("x" + std::to_string(1000 + i)), k("v"));
    for (int i = 299; i >= 0; --i) {
        EXPECT_TRUE(t.erase(k("x" + std::to_string(1000 + i)))) << i;
    }
    EXPECT_TRUE(t.empty());
    EXPECT_TRUE(t.check_invariants());
}

class BTreeRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BTreeRandomSweep, MatchesStdMapUnderRandomOps) {
    // Property test: the B-Tree agrees with std::map through thousands of
    // random put/get/erase ops and keeps its invariants.
    BTreeMap t;
    std::map<Bytes, Bytes> ref;
    Rng rng(GetParam());

    for (int i = 0; i < 4000; ++i) {
        Bytes key = rng.bytes(1 + rng.uniform(3));  // small key space -> collisions
        int action = static_cast<int>(rng.uniform(3));
        if (action == 0) {
            Bytes value = rng.bytes(6);
            bool was_new = !ref.contains(key);
            EXPECT_EQ(t.put(key, value), was_new);
            ref[key] = value;
        } else if (action == 1) {
            const Bytes* v = t.get(key);
            auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(v, nullptr);
            } else {
                ASSERT_NE(v, nullptr);
                EXPECT_EQ(*v, it->second);
            }
        } else {
            EXPECT_EQ(t.erase(key), ref.erase(key) > 0);
        }
        if (i % 256 == 0) EXPECT_TRUE(t.check_invariants()) << "op " << i;
    }
    EXPECT_EQ(t.size(), ref.size());
    EXPECT_TRUE(t.check_invariants());

    // Full content comparison.
    auto it = ref.begin();
    t.for_each([&](const Bytes& key, const Bytes& value) {
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(key, it->first);
        EXPECT_EQ(value, it->second);
        ++it;
    });
    EXPECT_EQ(it, ref.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeRandomSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(BTree, LargeDatasetLookups) {
    BTreeMap t;
    for (int i = 0; i < 100'000; ++i) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "user%012d", i);
        t.put(to_bytes(buf), to_bytes("value"));
    }
    EXPECT_EQ(t.size(), 100'000u);
    EXPECT_TRUE(t.check_invariants());
    EXPECT_NE(t.get(to_bytes("user000000099999")), nullptr);
    EXPECT_EQ(t.get(to_bytes("user000000100000")), nullptr);
}

}  // namespace
}  // namespace neo::app
