// KvStateMachine multi-key transaction semantics: local atomic txns, the
// 2PC participant half (prepare locks + stages, commit/abort resolves),
// full undo-compatibility with speculative rollback, and the Byzantine
// forged-prepare test double.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/kvstore.hpp"

namespace neo::app {
namespace {

KvOp put(const char* k, const char* v) {
    KvOp op;
    op.type = KvOpType::kPut;
    op.key = to_bytes(k);
    op.value = to_bytes(v);
    return op;
}

KvOp get(const char* k) {
    KvOp op;
    op.type = KvOpType::kGet;
    op.key = to_bytes(k);
    return op;
}

KvOp del(const char* k) {
    KvOp op;
    op.type = KvOpType::kDelete;
    op.key = to_bytes(k);
    return op;
}

KvResult exec(KvStateMachine& sm, const KvTxnOp& txn) {
    auto res = KvResult::parse(sm.execute(txn.serialize()));
    EXPECT_TRUE(res.has_value());
    return res.value_or(KvResult{KvStatus::kBadRequest, {}});
}

KvTxnOp local(std::vector<KvOp> ops) {
    KvTxnOp t;
    t.type = KvOpType::kTxnLocal;
    t.ops = std::move(ops);
    return t;
}

KvTxnOp prepare(std::uint64_t id, std::vector<KvOp> ops) {
    KvTxnOp t;
    t.type = KvOpType::kTxnPrepare;
    t.txn_id = id;
    t.ops = std::move(ops);
    return t;
}

KvTxnOp decide(KvOpType type, std::uint64_t id) {
    KvTxnOp t;
    t.type = type;
    t.txn_id = id;
    return t;
}

const Bytes* store_get(KvStateMachine& sm, const char* k) {
    return sm.store().get(to_bytes(k));
}

TEST(KvTxn, WireRoundTrip) {
    KvTxnOp t = prepare(0xdeadbeef12345678ull, {put("a", "1"), get("b"), del("c")});
    auto back = KvTxnOp::parse(t.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, KvOpType::kTxnPrepare);
    EXPECT_EQ(back->txn_id, t.txn_id);
    ASSERT_EQ(back->ops.size(), 3u);
    EXPECT_EQ(back->ops[0].value, to_bytes("1"));
    EXPECT_EQ(back->ops[2].type, KvOpType::kDelete);

    KvTxnOp c = decide(KvOpType::kTxnCommit, 42);
    auto back2 = KvTxnOp::parse(c.serialize());
    ASSERT_TRUE(back2.has_value());
    EXPECT_EQ(back2->txn_id, 42u);
    EXPECT_TRUE(back2->ops.empty());

    EXPECT_FALSE(KvTxnOp::parse(to_bytes("\x05garbage")).has_value());
}

TEST(KvTxn, LocalAppliesAtomicallyAndUndoes) {
    KvStateMachine sm;
    sm.store().put(to_bytes("x"), to_bytes("old"));

    KvResult r = exec(sm, local({put("x", "new"), put("y", "1"), del("missing")}));
    EXPECT_EQ(r.status, KvStatus::kOk);
    EXPECT_EQ(*store_get(sm, "x"), to_bytes("new"));
    EXPECT_EQ(*store_get(sm, "y"), to_bytes("1"));

    sm.undo_last();
    EXPECT_EQ(*store_get(sm, "x"), to_bytes("old"));
    EXPECT_EQ(store_get(sm, "y"), nullptr);
}

TEST(KvTxn, LocalAbortsOnLockedKeyAndLeavesNoTrace) {
    KvStateMachine sm;
    exec(sm, prepare(1, {put("locked", "v")}));
    ASSERT_EQ(sm.locked_keys(), 1u);

    KvResult r = exec(sm, local({put("other", "1"), put("locked", "2")}));
    EXPECT_EQ(r.status, KvStatus::kTxnAborted);
    EXPECT_EQ(store_get(sm, "other"), nullptr);  // nothing applied

    sm.undo_last();  // the aborted local txn still consumed a log slot
    EXPECT_EQ(sm.locked_keys(), 1u);
}

TEST(KvTxn, PrepareLocksStagesAndReadsUnderLock) {
    KvStateMachine sm;
    sm.store().put(to_bytes("r"), to_bytes("val"));

    KvResult r = exec(sm, prepare(9, {get("r"), put("w", "staged")}));
    EXPECT_EQ(r.status, KvStatus::kTxnPrepared);
    EXPECT_EQ(sm.locked_keys(), 2u);
    EXPECT_EQ(sm.staged_txns(), 1u);
    EXPECT_EQ(store_get(sm, "w"), nullptr);  // staged, not applied

    // The prepare reply carries the read results (2PL reads at lock time).
    Reader packed(BytesView(r.value));
    std::uint32_t n = packed.u32();
    ASSERT_EQ(n, 2u);
    auto read0 = KvResult::parse(packed.blob(1 << 20));
    ASSERT_TRUE(read0.has_value());
    EXPECT_EQ(read0->status, KvStatus::kOk);
    EXPECT_EQ(read0->value, to_bytes("val"));
}

TEST(KvTxn, PrepareConflictVotesAbort) {
    KvStateMachine sm;
    exec(sm, prepare(1, {put("k", "a")}));
    KvResult r = exec(sm, prepare(2, {put("k", "b")}));
    EXPECT_EQ(r.status, KvStatus::kTxnAborted);
    EXPECT_EQ(sm.staged_txns(), 1u);  // only txn 1
}

TEST(KvTxn, CommitAppliesStagedWritesAndReleasesLocks) {
    KvStateMachine sm;
    sm.store().put(to_bytes("d"), to_bytes("doomed"));
    exec(sm, prepare(5, {put("k", "v"), del("d")}));

    KvResult r = exec(sm, decide(KvOpType::kTxnCommit, 5));
    EXPECT_EQ(r.status, KvStatus::kOk);
    EXPECT_EQ(*store_get(sm, "k"), to_bytes("v"));
    EXPECT_EQ(store_get(sm, "d"), nullptr);
    EXPECT_EQ(sm.locked_keys(), 0u);
    EXPECT_EQ(sm.staged_txns(), 0u);
}

TEST(KvTxn, CommitUnknownTxnIsRejected) {
    KvStateMachine sm;
    KvResult r = exec(sm, decide(KvOpType::kTxnCommit, 404));
    EXPECT_EQ(r.status, KvStatus::kTxnUnknown);
}

TEST(KvTxn, AbortReleasesLocksAndIsIdempotent) {
    KvStateMachine sm;
    exec(sm, prepare(7, {put("k", "v")}));
    ASSERT_EQ(sm.locked_keys(), 1u);

    EXPECT_EQ(exec(sm, decide(KvOpType::kTxnAbort, 7)).status, KvStatus::kOk);
    EXPECT_EQ(sm.locked_keys(), 0u);
    EXPECT_EQ(store_get(sm, "k"), nullptr);  // staged write discarded

    // Retried / unknown abort: still kOk, still a no-op.
    EXPECT_EQ(exec(sm, decide(KvOpType::kTxnAbort, 7)).status, KvStatus::kOk);
}

TEST(KvTxn, UndoRestoresPrepareCommitAbortExactly) {
    // Speculative rollback must be able to unwind any phase: undo commit
    // -> staged txn and locks return; undo abort -> same; undo prepare ->
    // locks and stash vanish.
    KvStateMachine sm;
    sm.store().put(to_bytes("a"), to_bytes("0"));

    exec(sm, prepare(11, {put("a", "1"), put("b", "2")}));
    exec(sm, decide(KvOpType::kTxnCommit, 11));
    EXPECT_EQ(*store_get(sm, "a"), to_bytes("1"));

    sm.undo_last();  // undo commit
    EXPECT_EQ(*store_get(sm, "a"), to_bytes("0"));
    EXPECT_EQ(store_get(sm, "b"), nullptr);
    EXPECT_EQ(sm.locked_keys(), 2u);
    EXPECT_EQ(sm.staged_txns(), 1u);

    sm.undo_last();  // undo prepare
    EXPECT_EQ(sm.locked_keys(), 0u);
    EXPECT_EQ(sm.staged_txns(), 0u);

    // Same dance through the abort path.
    exec(sm, prepare(12, {put("c", "3")}));
    exec(sm, decide(KvOpType::kTxnAbort, 12));
    EXPECT_EQ(sm.locked_keys(), 0u);
    sm.undo_last();  // undo abort
    EXPECT_EQ(sm.locked_keys(), 1u);
    EXPECT_EQ(sm.staged_txns(), 1u);
    sm.undo_last();  // undo prepare
    EXPECT_EQ(sm.locked_keys(), 0u);
    EXPECT_EQ(sm.staged_txns(), 0u);
    EXPECT_EQ(sm.executed(), 0u);
}

TEST(KvTxn, ObserverSeesEveryPhaseWithOutcome) {
    KvStateMachine sm;
    struct Event {
        std::uint64_t txn;
        int phase;
        bool applied;
    };
    std::vector<Event> events;
    sm.set_txn_observer([&](std::uint64_t t, int p, bool a) { events.push_back({t, p, a}); });

    exec(sm, prepare(1, {put("k", "v")}));
    exec(sm, prepare(2, {put("k", "clash")}));  // lock conflict
    exec(sm, decide(KvOpType::kTxnCommit, 1));
    exec(sm, decide(KvOpType::kTxnCommit, 99));  // unknown
    exec(sm, decide(KvOpType::kTxnAbort, 2));

    ASSERT_EQ(events.size(), 5u);
    EXPECT_TRUE(events[0].txn == 1 && events[0].phase == 0 && events[0].applied);
    EXPECT_TRUE(events[1].txn == 2 && events[1].phase == 0 && !events[1].applied);
    EXPECT_TRUE(events[2].txn == 1 && events[2].phase == 1 && events[2].applied);
    EXPECT_TRUE(events[3].txn == 99 && events[3].phase == 1 && !events[3].applied);
    EXPECT_TRUE(events[4].txn == 2 && events[4].phase == 2 && events[4].applied);
}

TEST(KvTxn, ByzantinePrepareEquivocates) {
    // The double claims PREPARED on the wire while recording an abort vote
    // and staging nothing — a later commit finds the txn unknown.
    KvStateMachine sm;
    sm.set_byzantine_prepare_equivocation(true);
    bool saw_abort_vote = false;
    sm.set_txn_observer([&](std::uint64_t t, int phase, bool applied) {
        if (t == 66 && phase == 0 && !applied) saw_abort_vote = true;
    });

    KvResult r = exec(sm, prepare(66, {put("k", "v")}));
    EXPECT_EQ(r.status, KvStatus::kTxnPrepared);  // the lie
    EXPECT_TRUE(saw_abort_vote);                  // the truth
    EXPECT_EQ(sm.locked_keys(), 0u);
    EXPECT_EQ(sm.staged_txns(), 0u);
    EXPECT_EQ(exec(sm, decide(KvOpType::kTxnCommit, 66)).status, KvStatus::kTxnUnknown);
}

}  // namespace
}  // namespace neo::app
