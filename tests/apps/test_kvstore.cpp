#include "apps/kvstore.hpp"

#include <gtest/gtest.h>

namespace neo::app {
namespace {

KvOp put(std::string_view key, std::string_view value) {
    KvOp op;
    op.type = KvOpType::kPut;
    op.key = to_bytes(key);
    op.value = to_bytes(value);
    return op;
}

KvOp get(std::string_view key) {
    KvOp op;
    op.type = KvOpType::kGet;
    op.key = to_bytes(key);
    return op;
}

KvOp del(std::string_view key) {
    KvOp op;
    op.type = KvOpType::kDelete;
    op.key = to_bytes(key);
    return op;
}

KvResult run(KvStateMachine& sm, const KvOp& op) {
    Bytes res = sm.execute(op.serialize());
    auto parsed = KvResult::parse(res);
    EXPECT_TRUE(parsed.has_value());
    return *parsed;
}

TEST(KvOpWire, RoundTrip) {
    KvOp op = put("key", "value");
    auto back = KvOp::parse(op.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, KvOpType::kPut);
    EXPECT_EQ(back->key, to_bytes("key"));
    EXPECT_EQ(back->value, to_bytes("value"));

    KvOp g = get("k");
    auto back2 = KvOp::parse(g.serialize());
    ASSERT_TRUE(back2.has_value());
    EXPECT_EQ(back2->type, KvOpType::kGet);
}

TEST(KvOpWire, MalformedRejected) {
    EXPECT_FALSE(KvOp::parse({}).has_value());
    Bytes bad{9, 0, 0};
    EXPECT_FALSE(KvOp::parse(bad).has_value());
    KvOp op = put("k", "v");
    Bytes wire = op.serialize();
    wire.pop_back();
    EXPECT_FALSE(KvOp::parse(wire).has_value());
    wire = op.serialize();
    wire.push_back(0);
    EXPECT_FALSE(KvOp::parse(wire).has_value());
}

TEST(KvStateMachine, PutThenGet) {
    KvStateMachine sm;
    EXPECT_EQ(run(sm, put("a", "1")).status, KvStatus::kOk);
    KvResult r = run(sm, get("a"));
    EXPECT_EQ(r.status, KvStatus::kOk);
    EXPECT_EQ(r.value, to_bytes("1"));
}

TEST(KvStateMachine, GetMissing) {
    KvStateMachine sm;
    EXPECT_EQ(run(sm, get("nope")).status, KvStatus::kNotFound);
}

TEST(KvStateMachine, DeleteSemantics) {
    KvStateMachine sm;
    run(sm, put("a", "1"));
    EXPECT_EQ(run(sm, del("a")).status, KvStatus::kOk);
    EXPECT_EQ(run(sm, get("a")).status, KvStatus::kNotFound);
    EXPECT_EQ(run(sm, del("a")).status, KvStatus::kNotFound);
}

TEST(KvStateMachine, MalformedOpReturnsBadRequest) {
    KvStateMachine sm;
    Bytes res = sm.execute(to_bytes("garbage"));
    auto parsed = KvResult::parse(res);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->status, KvStatus::kBadRequest);
    // Still undoable (no-op).
    sm.undo_last();
    EXPECT_EQ(sm.executed(), 0u);
}

TEST(KvStateMachine, UndoPutNewKey) {
    KvStateMachine sm;
    run(sm, put("a", "1"));
    sm.undo_last();
    EXPECT_EQ(run(sm, get("a")).status, KvStatus::kNotFound);
}

TEST(KvStateMachine, UndoPutOverwrite) {
    KvStateMachine sm;
    run(sm, put("a", "old"));
    run(sm, put("a", "new"));
    sm.undo_last();
    EXPECT_EQ(run(sm, get("a")).value, to_bytes("old"));
}

TEST(KvStateMachine, UndoDelete) {
    KvStateMachine sm;
    run(sm, put("a", "kept"));
    run(sm, del("a"));
    sm.undo_last();
    EXPECT_EQ(run(sm, get("a")).value, to_bytes("kept"));
}

TEST(KvStateMachine, UndoStackLifoOrder) {
    KvStateMachine sm;
    run(sm, put("x", "1"));
    run(sm, put("x", "2"));
    run(sm, del("x"));
    run(sm, put("x", "3"));
    sm.undo_last();  // -> deleted
    sm.undo_last();  // -> "2"
    sm.undo_last();  // -> "1"
    EXPECT_EQ(*sm.store().get(to_bytes("x")), to_bytes("1"));
    sm.undo_last();  // -> missing
    EXPECT_EQ(sm.store().get(to_bytes("x")), nullptr);
    EXPECT_EQ(sm.executed(), 0u);
}

TEST(KvStateMachine, CommitPrefixTrimsUndo) {
    KvStateMachine sm;
    for (int i = 0; i < 10; ++i) run(sm, put("k" + std::to_string(i), "v"));
    sm.commit_prefix(10);
    // All history trimmed; rolling back the next op still works.
    run(sm, put("fresh", "1"));
    sm.undo_last();
    EXPECT_EQ(run(sm, get("fresh")).status, KvStatus::kNotFound);
}

TEST(KvStateMachine, ExecuteCostDistinguishesReadsWrites) {
    KvStateMachine sm;
    EXPECT_LT(sm.execute_cost_ns(get("a").serialize()), sm.execute_cost_ns(put("a", "b").serialize()));
}

TEST(KvStateMachine, SpeculativeRollbackScenario) {
    // Mirrors NeoBFT's rollback: execute a suffix, undo it, re-execute a
    // different suffix, and end consistent.
    KvStateMachine sm;
    run(sm, put("acct", "100"));
    sm.commit_prefix(1);

    // Speculative: two ops that will be rolled back.
    run(sm, put("acct", "50"));
    run(sm, put("other", "1"));
    sm.undo_last();
    sm.undo_last();

    // Re-execute the agreed history.
    run(sm, put("acct", "75"));
    EXPECT_EQ(run(sm, get("acct")).value, to_bytes("75"));
    EXPECT_EQ(run(sm, get("other")).status, KvStatus::kNotFound);
}

}  // namespace
}  // namespace neo::app
