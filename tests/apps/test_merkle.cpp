// Chunked Merkle tree used by checkpoint state transfer: proof round
// trips, tamper rejection, index binding, odd-leaf promotion, and the
// determinism contract (same snapshot bytes -> same root on every
// replica). Includes the constructor regression: building a tree must not
// touch accessors that read levels_ before any level exists.
#include "apps/merkle.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/bytes.hpp"

namespace neo::app {
namespace {

Bytes pattern_bytes(std::size_t n, std::uint8_t seed = 7) {
    Bytes b(n);
    for (std::size_t i = 0; i < n; ++i) {
        b[i] = static_cast<std::uint8_t>(seed + i * 31);
    }
    return b;
}

BytesView view(const Bytes& b) { return BytesView(b.data(), b.size()); }

TEST(Merkle, ConstructorHandlesEveryChunkCountShape) {
    // Regression: the constructor used to call chunk(), whose bounds
    // assert reads n_chunks() -> levels_.front() on a still-empty levels_
    // vector (UB; crashed the first checkpoint ever taken). Constructing
    // over the boundary shapes must simply work.
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
                          std::size_t{65}, std::size_t{64 * 7}, std::size_t{64 * 7 + 1}}) {
        Bytes data = pattern_bytes(n);
        MerkleTree t(view(data), 64);
        std::uint32_t want =
            n == 0 ? 1 : static_cast<std::uint32_t>((n + 63) / 64);
        EXPECT_EQ(t.n_chunks(), want) << "data size " << n;
    }
}

TEST(Merkle, EmptySnapshotHasOneEmptyLeaf) {
    MerkleTree t(BytesView(), 64);
    ASSERT_EQ(t.n_chunks(), 1u);
    EXPECT_EQ(t.chunk(0).size(), 0u);
    EXPECT_TRUE(merkle_verify(t.root(), t.chunk(0), t.prove(0)));
}

TEST(Merkle, RootIsDeterministic) {
    Bytes data = pattern_bytes(1000);
    MerkleTree a(view(data), 64);
    MerkleTree b(view(data), 64);
    EXPECT_EQ(a.root(), b.root());
    data[500] ^= 1;
    MerkleTree c(view(data), 64);
    EXPECT_NE(a.root(), c.root());
}

TEST(Merkle, EveryChunkProofVerifies) {
    // 9 chunks of 64 with a short tail: exercises unpaired promotion at
    // several levels.
    Bytes data = pattern_bytes(8 * 64 + 17);
    MerkleTree t(view(data), 64);
    ASSERT_EQ(t.n_chunks(), 9u);
    EXPECT_EQ(t.chunk(8).size(), 17u);
    for (std::uint32_t i = 0; i < t.n_chunks(); ++i) {
        EXPECT_TRUE(merkle_verify(t.root(), t.chunk(i), t.prove(i))) << "chunk " << i;
    }
}

TEST(Merkle, TamperedChunkRejected) {
    Bytes data = pattern_bytes(6 * 64);
    MerkleTree t(view(data), 64);
    for (std::uint32_t i = 0; i < t.n_chunks(); ++i) {
        BytesView c = t.chunk(i);
        Bytes bad(c.begin(), c.end());
        bad[0] ^= 0xA5;
        EXPECT_FALSE(merkle_verify(t.root(), view(bad), t.prove(i))) << "chunk " << i;
    }
}

TEST(Merkle, ChunkServedUnderWrongIndexRejected) {
    // The leaf hash binds the index, so a malicious peer cannot answer a
    // request for chunk 2 with (valid) chunk 3 plus chunk 3's proof
    // re-labelled.
    Bytes data = pattern_bytes(4 * 64);
    MerkleTree t(view(data), 64);
    MerkleProof p = t.prove(3);
    p.index = 2;
    EXPECT_FALSE(merkle_verify(t.root(), t.chunk(3), p));
    EXPECT_FALSE(merkle_verify(t.root(), t.chunk(3), t.prove(2)));
}

TEST(Merkle, MalformedProofsRejected) {
    Bytes data = pattern_bytes(5 * 64);
    MerkleTree t(view(data), 64);

    MerkleProof p = t.prove(1);
    p.siblings.push_back(Digest32{});  // trailing garbage
    EXPECT_FALSE(merkle_verify(t.root(), t.chunk(1), p));

    p = t.prove(1);
    p.siblings.pop_back();  // truncated path
    EXPECT_FALSE(merkle_verify(t.root(), t.chunk(1), p));

    p = t.prove(1);
    p.index = p.n_leaves;  // out of range
    EXPECT_FALSE(merkle_verify(t.root(), t.chunk(1), p));

    p = t.prove(1);
    p.n_leaves = 0;
    EXPECT_FALSE(merkle_verify(t.root(), t.chunk(1), p));
}

TEST(Merkle, SingleChunkTreeHasEmptyProof) {
    Bytes data = pattern_bytes(10);
    MerkleTree t(view(data), 64);
    ASSERT_EQ(t.n_chunks(), 1u);
    MerkleProof p = t.prove(0);
    EXPECT_TRUE(p.siblings.empty());
    EXPECT_TRUE(merkle_verify(t.root(), t.chunk(0), p));
}

}  // namespace
}  // namespace neo::app
