#include "apps/ycsb.hpp"

#include <gtest/gtest.h>

#include <map>

namespace neo::app {
namespace {

TEST(Zipfian, StaysInRange) {
    ZipfianGenerator z(1000);
    Rng rng(1);
    for (int i = 0; i < 10'000; ++i) {
        EXPECT_LT(z.next(rng), 1000u);
    }
}

TEST(Zipfian, SkewedTowardsLowRanks) {
    ZipfianGenerator z(10'000, 0.99);
    Rng rng(2);
    std::uint64_t low = 0;
    for (int i = 0; i < 50'000; ++i) {
        if (z.next(rng) < 100) ++low;  // top 1% of keys
    }
    // With theta=0.99, the top 1% of records should draw far more than 1%
    // of accesses (empirically ~35-45%).
    EXPECT_GT(low, 10'000u);
}

TEST(Zipfian, UniformThetaZeroIsRoughlyUniform) {
    ZipfianGenerator z(100, 0.01);
    Rng rng(3);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 100'000; ++i) ++counts[z.next(rng)];
    // Every key drawn at least once, none dominating.
    EXPECT_EQ(counts.size(), 100u);
    for (const auto& [k, c] : counts) EXPECT_LT(c, 5'000) << k;
}

TEST(Ycsb, KeysAreDeterministicAndDistinct) {
    YcsbConfig cfg;
    cfg.record_count = 100;
    YcsbWorkload w(cfg, 7), w2(cfg, 8);
    EXPECT_EQ(w.key_of(42), w2.key_of(42));  // keys independent of seed
    EXPECT_NE(w.key_of(1), w.key_of(2));
    EXPECT_EQ(w.value_of(5), w2.value_of(5));
}

TEST(Ycsb, LoadPopulatesStateMachine) {
    YcsbConfig cfg;
    cfg.record_count = 500;
    cfg.field_length = 64;
    YcsbWorkload w(cfg, 9);
    KvStateMachine sm;
    w.load_into(sm);
    EXPECT_EQ(sm.store().size(), 500u);
    const Bytes* v = sm.store().get(w.key_of(123));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->size(), 64u);
    EXPECT_EQ(*v, w.value_of(123));
}

TEST(Ycsb, WorkloadAMixesReadsAndUpdates) {
    YcsbConfig cfg;
    cfg.record_count = 1000;
    YcsbWorkload w(cfg, 11);
    int reads = 0, writes = 0;
    for (int i = 0; i < 10'000; ++i) {
        KvOp op = w.next_op();
        if (op.type == KvOpType::kGet) {
            ++reads;
        } else {
            ASSERT_EQ(op.type, KvOpType::kPut);
            EXPECT_EQ(op.value.size(), cfg.field_length);
            ++writes;
        }
    }
    EXPECT_NEAR(static_cast<double>(reads) / 10'000.0, 0.5, 0.03);
    EXPECT_NEAR(static_cast<double>(writes) / 10'000.0, 0.5, 0.03);
}

TEST(Ycsb, OpsTargetLoadedKeys) {
    YcsbConfig cfg;
    cfg.record_count = 200;
    YcsbWorkload w(cfg, 13);
    KvStateMachine sm;
    w.load_into(sm);
    for (int i = 0; i < 1000; ++i) {
        KvOp op = w.next_op();
        // Every generated key must exist in the loaded dataset.
        EXPECT_NE(sm.store().get(op.key), nullptr);
    }
}

TEST(Ycsb, DeterministicStream) {
    YcsbConfig cfg;
    cfg.record_count = 50;
    YcsbWorkload a(cfg, 21), b(cfg, 21);
    for (int i = 0; i < 200; ++i) {
        KvOp oa = a.next_op();
        KvOp ob = b.next_op();
        EXPECT_EQ(oa.serialize(), ob.serialize());
    }
}

TEST(Ycsb, ExecutableAgainstStateMachine) {
    YcsbConfig cfg;
    cfg.record_count = 300;
    YcsbWorkload w(cfg, 31);
    KvStateMachine sm;
    w.load_into(sm);
    for (int i = 0; i < 2000; ++i) {
        Bytes res = sm.execute(w.next_op().serialize());
        auto parsed = KvResult::parse(res);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->status, KvStatus::kOk);
    }
    EXPECT_TRUE(sm.store().check_invariants());
}

}  // namespace
}  // namespace neo::app
