// Shared helpers for baseline protocol tests.
#pragma once

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/common.hpp"

namespace neo::baselines::testutil {

constexpr NodeId kReplicaBase = 1;
constexpr NodeId kClientBase = 400;

inline sim::Network make_network(sim::Simulator& sim, std::uint64_t seed = 77) {
    sim::Network net(sim, seed);
    net.set_default_link(sim::datacenter_link());
    return net;
}

/// Drives `client` through `total` sequential ops, storing echo results.
template <typename ClientT>
void drive(ClientT& client, int c, int i, int total, std::vector<std::string>& out) {
    if (i >= total) return;
    std::string op = "op-" + std::to_string(c) + "-" + std::to_string(i);
    client.invoke(to_bytes(op), [&client, c, i, total, &out](Bytes result) {
        out.push_back(to_string(result));
        drive(client, c, i + 1, total, out);
    });
}

}  // namespace neo::baselines::testutil
