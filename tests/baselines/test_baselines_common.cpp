#include "baselines/common.hpp"

#include <gtest/gtest.h>

#include "baselines_test_util.hpp"
#include "crypto/sha256.hpp"

namespace neo::baselines {
namespace {

TEST(BaselineWire, RequestRoundTrip) {
    Request m;
    m.client = 5;
    m.request_id = 9;
    m.op = to_bytes("put k v");
    m.mac = Bytes(8, 0xaa);
    Bytes wire = m.serialize();
    Reader r(BytesView(wire).subspan(1));
    Request q = Request::parse(r);
    EXPECT_EQ(q.client, 5u);
    EXPECT_EQ(q.op, m.op);
    EXPECT_EQ(q.mac, m.mac);
}

TEST(BaselineWire, ReplyRoundTrip) {
    Reply m;
    m.view = 2;
    m.replica = 3;
    m.request_id = 4;
    m.result = to_bytes("ok");
    m.mac = Bytes(8, 0xbb);
    Bytes wire = m.serialize();
    Reader r(BytesView(wire).subspan(1));
    Reply q = Reply::parse(r);
    EXPECT_EQ(q.view, 2u);
    EXPECT_EQ(q.result, m.result);
}

TEST(BaselineWire, BatchRoundTrip) {
    std::vector<Request> batch;
    for (int i = 0; i < 5; ++i) {
        Request req;
        req.client = static_cast<NodeId>(100 + i);
        req.request_id = static_cast<std::uint64_t>(i);
        req.op = to_bytes("op" + std::to_string(i));
        batch.push_back(req);
    }
    Writer w;
    put_batch(w, batch);
    Reader r(w.bytes());
    std::vector<Request> back = get_batch(r);
    ASSERT_EQ(back.size(), 5u);
    EXPECT_EQ(back[3].client, 103u);
    EXPECT_EQ(batch_digest(batch), batch_digest(back));
}

TEST(BaselineWire, BatchDigestOrderSensitive) {
    Request a, b;
    a.client = 1;
    a.op = to_bytes("a");
    b.client = 2;
    b.op = to_bytes("b");
    EXPECT_NE(batch_digest({a, b}), batch_digest({b, a}));
}

TEST(Batcher, SealBySize) {
    // Pin the threshold by making min == max: classic fixed-size sealing.
    Batcher b(sim::AdaptiveBatchPolicy{3, 3, sim::kMillisecond});
    for (int i = 0; i < 2; ++i) {
        Request r;
        b.add(r);
        EXPECT_FALSE(b.should_seal_by_size());
    }
    Request r;
    b.add(r);
    EXPECT_TRUE(b.should_seal_by_size());
    auto batch = b.seal();
    EXPECT_EQ(batch.size(), 3u);
    EXPECT_TRUE(b.empty());
}

TEST(Batcher, AdaptiveThresholdTracksLoad) {
    Batcher b(sim::AdaptiveBatchPolicy{1, 8, sim::kMillisecond});
    EXPECT_EQ(b.controller().target(), 1u);

    // Size seals double the threshold up to the cap.
    for (std::size_t expect : {2u, 4u, 8u, 8u}) {
        while (!b.should_seal_by_size()) b.add(Request{});
        b.seal();
        EXPECT_EQ(b.controller().target(), expect);
    }

    // Timer flushes at under half the threshold halve it down to the floor.
    b.add(Request{});
    b.seal();  // 1 < 8/2
    EXPECT_EQ(b.controller().target(), 4u);
    b.add(Request{});
    b.add(Request{});
    b.seal();  // 2 == 4/2: not underfull enough, threshold holds
    EXPECT_EQ(b.controller().target(), 4u);
    b.add(Request{});
    b.seal();  // 1 < 4/2
    EXPECT_EQ(b.controller().target(), 2u);
    EXPECT_EQ(b.controller().seals(), 7u);
    EXPECT_EQ(b.controller().size_seals(), 4u);
    EXPECT_EQ(b.controller().timer_seals(), 3u);
}

TEST(BaseConfig, PrimaryRotationAndHelpers) {
    BaseConfig cfg;
    cfg.replicas = {10, 20, 30, 40};
    cfg.f = 1;
    EXPECT_EQ(cfg.primary(0), 10u);
    EXPECT_EQ(cfg.primary(5), 20u);
    EXPECT_TRUE(cfg.is_replica(30));
    EXPECT_FALSE(cfg.is_replica(31));
    EXPECT_EQ(cfg.others(10).size(), 3u);
}

TEST(Unreplicated, EchoRoundTrip) {
    sim::Simulator sim;
    sim::Network net(sim, 3);
    net.set_default_link(sim::datacenter_link());
    crypto::TrustRoot root(crypto::CryptoMode::kReal, 4);

    UnreplicatedServer server(root.provision(1));
    net.add_node(server, 1);
    UnreplicatedClient client(1, root.provision(400));
    net.add_node(client, 400);

    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 10, results);
    sim.run_until(sim::kSecond);
    ASSERT_EQ(results.size(), 10u);
    EXPECT_EQ(results[7], "op-0-7");
    EXPECT_EQ(server.handled(), 10u);
}

TEST(Unreplicated, BadMacIgnored) {
    sim::Simulator sim;
    sim::Network net(sim, 3);
    net.set_default_link(sim::datacenter_link());
    crypto::TrustRoot root(crypto::CryptoMode::kReal, 4);
    UnreplicatedServer server(root.provision(1));
    net.add_node(server, 1);
    UnreplicatedClient client(1, root.provision(400));
    net.add_node(client, 400);

    net.set_tamper([](NodeId, NodeId to, Bytes& data) {
        if (to == 1 && data.size() > 4) data.back() ^= 1;
        return sim::TamperAction::kDeliver;
    });
    bool done = false;
    client.invoke(to_bytes("x"), [&](Bytes) { done = true; });
    sim.run_until(sim::kSecond);
    EXPECT_FALSE(done);
    EXPECT_EQ(server.handled(), 0u);
}

}  // namespace
}  // namespace neo::baselines
