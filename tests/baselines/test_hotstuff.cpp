#include "baselines/hotstuff.hpp"

#include <gtest/gtest.h>

#include "baselines_test_util.hpp"

namespace neo::baselines {
namespace {

struct HotStuffDeployment {
    explicit HotStuffDeployment(int n = 4, HotStuffConfig base = {})
        : net(sim, 81), root(crypto::CryptoMode::kReal, 8) {
        net.set_default_link(sim::datacenter_link());
        cfg = base;
        cfg.f = (n - 1) / 3;
        for (int i = 0; i < n; ++i) cfg.replicas.push_back(testutil::kReplicaBase + static_cast<NodeId>(i));
        for (int i = 0; i < n; ++i) {
            NodeId rid = testutil::kReplicaBase + static_cast<NodeId>(i);
            auto rep = std::make_unique<HotStuffReplica>(cfg, root.provision(rid));
            net.add_node(*rep, rid);
            replicas.push_back(std::move(rep));
        }
    }

    QuorumClient& add_client() {
        NodeId cid = testutil::kClientBase + static_cast<NodeId>(clients.size());
        auto c = std::make_unique<QuorumClient>(cfg, root.provision(cid),
                                                static_cast<std::size_t>(cfg.f + 1));
        net.add_node(*c, cid);
        clients.push_back(std::move(c));
        return *clients.back();
    }

    sim::Simulator sim;
    sim::Network net;
    crypto::TrustRoot root;
    HotStuffConfig cfg;
    std::vector<std::unique_ptr<HotStuffReplica>> replicas;
    std::vector<std::unique_ptr<QuorumClient>> clients;
};

TEST(HotStuff, SingleRequestDecides) {
    HotStuffDeployment d;
    auto& client = d.add_client();
    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 1, results);
    d.sim.run_until(sim::kSecond);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0], "op-0-0");
    for (auto& rep : d.replicas) {
        EXPECT_EQ(rep->stats().batches_decided, 1u);
        EXPECT_EQ(rep->stats().requests_executed, 1u);
    }
}

TEST(HotStuff, SequentialWorkload) {
    HotStuffDeployment d;
    auto& client = d.add_client();
    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 20, results);
    d.sim.run_until(30 * sim::kSecond);
    ASSERT_EQ(results.size(), 20u);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(results[static_cast<std::size_t>(i)], "op-0-" + std::to_string(i));
    }
}

TEST(HotStuff, MultipleClientsBatch) {
    HotStuffConfig base;
    base.batch_max = 8;
    HotStuffDeployment d(4, base);
    std::vector<std::vector<std::string>> results(8);
    for (int c = 0; c < 8; ++c) {
        auto& client = d.add_client();
        testutil::drive(client, c, 0, 5, results[static_cast<std::size_t>(c)]);
    }
    d.sim.run_until(30 * sim::kSecond);
    for (const auto& r : results) EXPECT_EQ(r.size(), 5u);
    EXPECT_LT(d.replicas[0]->stats().batches_decided, 40u);
}

TEST(HotStuff, ToleratesSilentFollower) {
    HotStuffDeployment d;
    d.net.set_node_down(4, true);
    auto& client = d.add_client();
    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 5, results);
    d.sim.run_until(10 * sim::kSecond);
    EXPECT_EQ(results.size(), 5u);
}

TEST(HotStuff, CorruptedVoteDoesNotCount) {
    HotStuffDeployment d;
    // Corrupt replica 2's votes on the wire: the leader must discard them,
    // still reaching the 2f+1 quorum from {leader, 3, 4}.
    d.net.set_tamper([](NodeId from, NodeId to, Bytes& data) {
        if (from == 2 && to == 1 && !data.empty() &&
            data[0] == static_cast<std::uint8_t>(Kind::kHsVote)) {
            data.back() ^= 1;
        }
        return sim::TamperAction::kDeliver;
    });
    auto& client = d.add_client();
    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 3, results);
    d.sim.run_until(10 * sim::kSecond);
    EXPECT_EQ(results.size(), 3u);
}

TEST(HotStuff, HigherLatencyThanPhasesImply) {
    // Sanity on the phase structure: a single request takes at least 4
    // protocol round trips (propose/vote x3 + decide), i.e. clearly longer
    // than one network RTT.
    HotStuffDeployment d;
    auto& client = d.add_client();
    sim::Time start = d.sim.now();
    bool done = false;
    client.invoke(to_bytes("x"), [&](Bytes) { done = true; });
    d.sim.run_until(sim::kSecond);
    ASSERT_TRUE(done);
    // 8+ one-way delays at ~2.25us each plus batch delay (100us default).
    EXPECT_GT(d.sim.now() - start, 100 * sim::kMicrosecond);
}

}  // namespace
}  // namespace neo::baselines
