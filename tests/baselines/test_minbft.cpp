#include "baselines/minbft.hpp"

#include <gtest/gtest.h>

#include "baselines_test_util.hpp"
#include "crypto/sha256.hpp"

namespace neo::baselines {
namespace {

struct MinbftDeployment {
    explicit MinbftDeployment(int n = 3, MinbftConfig base = {})
        : net(sim, 83), root(crypto::CryptoMode::kReal, 9) {
        net.set_default_link(sim::datacenter_link());
        cfg = base;
        cfg.f = (n - 1) / 2;  // MinBFT: n = 2f+1
        for (int i = 0; i < n; ++i) cfg.replicas.push_back(testutil::kReplicaBase + static_cast<NodeId>(i));
        for (int i = 0; i < n; ++i) {
            NodeId rid = testutil::kReplicaBase + static_cast<NodeId>(i);
            auto rep = std::make_unique<MinbftReplica>(cfg, root.provision(rid), /*usig_seed=*/55);
            net.add_node(*rep, rid);
            replicas.push_back(std::move(rep));
        }
    }

    QuorumClient& add_client() {
        NodeId cid = testutil::kClientBase + static_cast<NodeId>(clients.size());
        auto c = std::make_unique<QuorumClient>(cfg, root.provision(cid),
                                                static_cast<std::size_t>(cfg.f + 1));
        net.add_node(*c, cid);
        clients.push_back(std::move(c));
        return *clients.back();
    }

    sim::Simulator sim;
    sim::Network net;
    crypto::TrustRoot root;
    MinbftConfig cfg;
    std::vector<std::unique_ptr<MinbftReplica>> replicas;
    std::vector<std::unique_ptr<QuorumClient>> clients;
};

TEST(Usig, CreatesMonotonicSequentialCounters) {
    Usig usig(1, 42);
    Digest32 d = crypto::sha256("m");
    auto ui1 = usig.create(d);
    auto ui2 = usig.create(d);
    EXPECT_EQ(ui1.counter, 1u);
    EXPECT_EQ(ui2.counter, 2u);
    EXPECT_NE(ui1.tag, ui2.tag);  // counter is part of the attestation
}

TEST(Usig, VerifiesAcrossInstances) {
    Usig a(7, 1), b(7, 2);
    Digest32 d = crypto::sha256("msg");
    auto ui = a.create(d);
    EXPECT_TRUE(b.verify(1, d, ui));
    EXPECT_FALSE(b.verify(2, d, ui));          // wrong claimed owner
    EXPECT_FALSE(b.verify(1, crypto::sha256("other"), ui));
    Usig::UI forged = ui;
    forged.counter += 1;
    EXPECT_FALSE(b.verify(1, d, forged));      // counter bound into the tag
}

TEST(Usig, DifferentSeedsIncompatible) {
    Usig a(7, 1), b(8, 1);
    Digest32 d = crypto::sha256("m");
    EXPECT_FALSE(b.verify(1, d, a.create(d)));
}

TEST(Minbft, SingleRequestCommitsWithThreeReplicas) {
    MinbftDeployment d;
    auto& client = d.add_client();
    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 1, results);
    d.sim.run_until(sim::kSecond);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0], "op-0-0");
    for (auto& rep : d.replicas) EXPECT_EQ(rep->stats().requests_executed, 1u);
}

TEST(Minbft, SequentialWorkload) {
    MinbftDeployment d;
    auto& client = d.add_client();
    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 20, results);
    d.sim.run_until(10 * sim::kSecond);
    ASSERT_EQ(results.size(), 20u);
}

TEST(Minbft, UsigCallsCharged) {
    MinbftDeployment d;
    auto& client = d.add_client();
    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 4, results);
    d.sim.run_until(10 * sim::kSecond);
    ASSERT_EQ(results.size(), 4u);
    // Primary: 2 creates per batch (+commit verifies); backups: >= 2 calls.
    for (auto& rep : d.replicas) EXPECT_GE(rep->stats().usig_calls, 4u);
}

TEST(Minbft, ToleratesCrashedBackupWithFivereplicas) {
    MinbftDeployment d(5);  // f=2
    d.net.set_node_down(5, true);
    d.net.set_node_down(4, true);
    auto& client = d.add_client();
    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 5, results);
    d.sim.run_until(10 * sim::kSecond);
    EXPECT_EQ(results.size(), 5u);
}

TEST(Minbft, ForgedPrepareRejected) {
    MinbftDeployment d;
    // A Byzantine backup (replica 2) forges a prepare pretending to be the
    // primary: backups must reject it (USIG tag won't verify for owner 1).
    std::vector<Request> batch;
    Request req;
    req.client = 400;
    req.request_id = 99;
    req.op = to_bytes("forged");
    batch.push_back(req);

    Usig rogue(55, 2);  // replica 2's own USIG
    Digest32 bd = batch_digest(batch);
    Writer pd(56);
    pd.str("minbft-prepare");
    pd.u64(0);
    pd.u64(1);
    pd.raw(BytesView(bd.data(), bd.size()));
    auto ui = rogue.create(crypto::sha256(pd.bytes()));

    Writer w(256);
    w.u8(static_cast<std::uint8_t>(Kind::kMbPrepare));
    w.u64(0);
    w.u64(1);
    put_batch(w, batch);
    ui.put(w);
    // Spoof: sent from node 2 but prepares must come from the primary (1).
    d.net.send(2, 3, std::move(w).take());
    d.sim.run_until(sim::kSecond);
    EXPECT_EQ(d.replicas[2]->stats().requests_executed, 0u);
}

TEST(Minbft, ReplayedPrepareRejected) {
    MinbftDeployment d;
    Bytes captured;
    d.net.set_tamper([&](NodeId from, NodeId to, Bytes& data) {
        if (from == 1 && to == 2 && !data.empty() &&
            data[0] == static_cast<std::uint8_t>(Kind::kMbPrepare) && captured.empty()) {
            captured = data;
        }
        return sim::TamperAction::kDeliver;
    });
    auto& client = d.add_client();
    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 2, results);
    d.sim.run_until(10 * sim::kSecond);
    ASSERT_EQ(results.size(), 2u);
    ASSERT_FALSE(captured.empty());

    std::uint64_t before = d.replicas[1]->stats().requests_executed;
    d.net.send(1, 2, captured);  // replay the first prepare
    d.sim.run_until(d.sim.now() + sim::kSecond);
    EXPECT_EQ(d.replicas[1]->stats().requests_executed, before);
}

}  // namespace
}  // namespace neo::baselines
