#include "baselines/pbft.hpp"

#include <gtest/gtest.h>

#include "baselines_test_util.hpp"

namespace neo::baselines {
namespace {

using testutil::drive;

struct PbftDeployment {
    explicit PbftDeployment(int n = 4, PbftConfig base = {})
        : net(sim, 77), root(crypto::CryptoMode::kReal, 5) {
        net.set_default_link(sim::datacenter_link());
        cfg = base;
        cfg.f = (n - 1) / 3;
        for (int i = 0; i < n; ++i) cfg.replicas.push_back(testutil::kReplicaBase + static_cast<NodeId>(i));
        for (int i = 0; i < n; ++i) {
            NodeId rid = testutil::kReplicaBase + static_cast<NodeId>(i);
            auto rep = std::make_unique<PbftReplica>(cfg, root.provision(rid));
            net.add_node(*rep, rid);
            replicas.push_back(std::move(rep));
        }
    }

    QuorumClient& add_client() {
        NodeId cid = testutil::kClientBase + static_cast<NodeId>(clients.size());
        auto c = std::make_unique<QuorumClient>(cfg, root.provision(cid),
                                                static_cast<std::size_t>(cfg.f + 1));
        net.add_node(*c, cid);
        clients.push_back(std::move(c));
        return *clients.back();
    }

    sim::Simulator sim;
    sim::Network net;
    crypto::TrustRoot root;
    PbftConfig cfg;
    std::vector<std::unique_ptr<PbftReplica>> replicas;
    std::vector<std::unique_ptr<QuorumClient>> clients;
};

TEST(Pbft, SingleRequestCommits) {
    PbftDeployment d;
    auto& client = d.add_client();
    std::vector<std::string> results;
    drive(client, 0, 0, 1, results);
    d.sim.run_until(sim::kSecond);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0], "op-0-0");
    for (auto& rep : d.replicas) {
        EXPECT_EQ(rep->stats().requests_executed, 1u);
        EXPECT_EQ(rep->executed_seq(), 1u);
    }
}

TEST(Pbft, SequentialWorkload) {
    PbftDeployment d;
    auto& client = d.add_client();
    std::vector<std::string> results;
    drive(client, 0, 0, 30, results);
    d.sim.run_until(10 * sim::kSecond);
    ASSERT_EQ(results.size(), 30u);
    for (int i = 0; i < 30; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], "op-0-" + std::to_string(i));
}

TEST(Pbft, BatchingAmortisesAgreement) {
    PbftConfig base;
    base.batch_max = 8;
    base.batch_delay = 200 * sim::kMicrosecond;
    PbftDeployment d(4, base);
    std::vector<std::vector<std::string>> results(8);
    for (int c = 0; c < 8; ++c) {
        auto& client = d.add_client();
        drive(client, c, 0, 10, results[static_cast<std::size_t>(c)]);
    }
    d.sim.run_until(10 * sim::kSecond);
    for (const auto& r : results) EXPECT_EQ(r.size(), 10u);
    // 80 requests in far fewer batches than 80.
    EXPECT_LT(d.replicas[0]->stats().batches_committed, 40u);
    EXPECT_EQ(d.replicas[0]->stats().requests_executed, 80u);
}

TEST(Pbft, AllReplicasExecuteIdentically) {
    PbftDeployment d;
    std::vector<std::vector<std::string>> results(3);
    for (int c = 0; c < 3; ++c) {
        auto& client = d.add_client();
        drive(client, c, 0, 10, results[static_cast<std::size_t>(c)]);
    }
    d.sim.run_until(10 * sim::kSecond);
    for (auto& rep : d.replicas) {
        EXPECT_EQ(rep->stats().requests_executed, 30u);
        EXPECT_EQ(rep->executed_seq(), d.replicas[0]->executed_seq());
    }
}

TEST(Pbft, ToleratesSilentBackup) {
    PbftDeployment d;
    d.net.set_node_down(4, true);  // one backup crashes
    auto& client = d.add_client();
    std::vector<std::string> results;
    drive(client, 0, 0, 10, results);
    d.sim.run_until(10 * sim::kSecond);
    EXPECT_EQ(results.size(), 10u);
}

TEST(Pbft, SevenReplicas) {
    PbftDeployment d(7);
    d.net.set_node_down(6, true);
    d.net.set_node_down(7, true);  // f=2
    auto& client = d.add_client();
    std::vector<std::string> results;
    drive(client, 0, 0, 5, results);
    d.sim.run_until(10 * sim::kSecond);
    EXPECT_EQ(results.size(), 5u);
}

TEST(Pbft, CheckpointsGarbageCollect) {
    PbftConfig base;
    base.checkpoint_interval = 4;
    base.batch_max = 1;  // one batch per request -> quick seq growth
    base.batch_delay = 10 * sim::kMicrosecond;
    PbftDeployment d(4, base);
    auto& client = d.add_client();
    std::vector<std::string> results;
    drive(client, 0, 0, 20, results);
    d.sim.run_until(10 * sim::kSecond);
    ASSERT_EQ(results.size(), 20u);
    for (auto& rep : d.replicas) EXPECT_GE(rep->stats().checkpoints, 3u);
}

TEST(Pbft, DuplicateRequestAnsweredFromCache) {
    PbftDeployment d;
    auto& client = d.add_client();
    std::vector<std::string> results;
    drive(client, 0, 0, 1, results);
    d.sim.run_until(sim::kSecond);
    ASSERT_EQ(results.size(), 1u);
    // Re-deliver the same request wire to the primary: replicas must not
    // re-execute.
    std::uint64_t executed_before = d.replicas[0]->stats().requests_executed;
    Request req;
    req.client = client.id();
    req.request_id = 1;
    req.op = to_bytes("op-0-0");
    req.mac = client.node_crypto().mac_for(1, req.mac_body());
    d.net.send(client.id(), 1, req.serialize());
    d.sim.run_until(d.sim.now() + sim::kSecond);
    EXPECT_EQ(d.replicas[0]->stats().requests_executed, executed_before);
}

TEST(Pbft, BadClientMacIgnored) {
    PbftDeployment d;
    Request req;
    req.client = 400;
    req.request_id = 1;
    req.op = to_bytes("evil");
    req.mac = Bytes(8, 0x42);
    // Register a node so the network can route from 400.
    auto& client = d.add_client();
    (void)client;
    d.net.send(400, 1, req.serialize());
    d.sim.run_until(sim::kSecond);
    for (auto& rep : d.replicas) EXPECT_EQ(rep->stats().requests_executed, 0u);
}

}  // namespace
}  // namespace neo::baselines
