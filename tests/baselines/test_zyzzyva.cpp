#include "baselines/zyzzyva.hpp"

#include <gtest/gtest.h>

#include "baselines_test_util.hpp"

namespace neo::baselines {
namespace {

struct ZyzzyvaDeployment {
    explicit ZyzzyvaDeployment(int n = 4, ZyzzyvaConfig base = {})
        : net(sim, 79), root(crypto::CryptoMode::kReal, 6) {
        net.set_default_link(sim::datacenter_link());
        cfg = base;
        cfg.f = (n - 1) / 3;
        for (int i = 0; i < n; ++i) cfg.replicas.push_back(testutil::kReplicaBase + static_cast<NodeId>(i));
        for (int i = 0; i < n; ++i) {
            NodeId rid = testutil::kReplicaBase + static_cast<NodeId>(i);
            auto rep = std::make_unique<ZyzzyvaReplica>(cfg, root.provision(rid));
            net.add_node(*rep, rid);
            replicas.push_back(std::move(rep));
        }
    }

    ZyzzyvaClient& add_client(ZyzzyvaClient::Options opts = {}) {
        NodeId cid = testutil::kClientBase + static_cast<NodeId>(clients.size());
        auto c = std::make_unique<ZyzzyvaClient>(cfg, root.provision(cid), opts);
        net.add_node(*c, cid);
        clients.push_back(std::move(c));
        return *clients.back();
    }

    sim::Simulator sim;
    sim::Network net;
    crypto::TrustRoot root;
    ZyzzyvaConfig cfg;
    std::vector<std::unique_ptr<ZyzzyvaReplica>> replicas;
    std::vector<std::unique_ptr<ZyzzyvaClient>> clients;
};

TEST(Zyzzyva, FastPathWithAllReplicas) {
    ZyzzyvaDeployment d;
    auto& client = d.add_client();
    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 10, results);
    d.sim.run_until(10 * sim::kSecond);
    ASSERT_EQ(results.size(), 10u);
    EXPECT_EQ(client.fast_commits(), 10u);
    EXPECT_EQ(client.slow_commits(), 0u);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], "op-0-" + std::to_string(i));
}

TEST(Zyzzyva, SlowPathWithSilentReplica) {
    // Zyzzyva-F: one silent replica means the fast path never completes.
    ZyzzyvaDeployment d;
    d.replicas[3]->set_silent(true);
    auto& client = d.add_client();
    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 5, results);
    d.sim.run_until(10 * sim::kSecond);
    ASSERT_EQ(results.size(), 5u);
    EXPECT_EQ(client.fast_commits(), 0u);
    EXPECT_EQ(client.slow_commits(), 5u);
}

TEST(Zyzzyva, SlowPathSlowerThanFast) {
    ZyzzyvaDeployment fast;
    auto& cf = fast.add_client();
    std::vector<std::string> rf;
    testutil::drive(cf, 0, 0, 5, rf);
    fast.sim.run_until(10 * sim::kSecond);
    sim::Time fast_done = 0;
    // Re-measure: single op latency.
    ZyzzyvaDeployment f2;
    auto& c2 = f2.add_client();
    bool done2 = false;
    c2.invoke(to_bytes("x"), [&](Bytes) { done2 = true; });
    f2.sim.run();
    fast_done = f2.sim.now();

    ZyzzyvaDeployment slow;
    slow.replicas[3]->set_silent(true);
    auto& c3 = slow.add_client();
    bool done3 = false;
    c3.invoke(to_bytes("x"), [&](Bytes) { done3 = true; });
    slow.sim.run_until(10 * sim::kSecond);

    EXPECT_TRUE(done2);
    EXPECT_TRUE(done3);
    // Slow path includes the fast-path timeout + an extra round trip.
    EXPECT_GT(slow.sim.now(), 0);
    EXPECT_GT(c3.slow_commits(), 0u);
    EXPECT_GT(400 * sim::kMicrosecond + fast_done, fast_done);  // sanity
}

TEST(Zyzzyva, SpeculativeHistoryConsistent) {
    ZyzzyvaDeployment d;
    std::vector<std::vector<std::string>> results(3);
    for (int c = 0; c < 3; ++c) {
        auto& client = d.add_client();
        testutil::drive(client, c, 0, 10, results[static_cast<std::size_t>(c)]);
    }
    d.sim.run_until(10 * sim::kSecond);
    for (const auto& r : results) EXPECT_EQ(r.size(), 10u);
    // All replicas executed the same number of requests (same order implied
    // by the matching histories the clients verified).
    for (auto& rep : d.replicas) {
        EXPECT_EQ(rep->stats().requests_executed, 30u);
    }
}

TEST(Zyzzyva, BatchedThroughput) {
    ZyzzyvaConfig base;
    base.batch_max = 8;
    ZyzzyvaDeployment d(4, base);
    std::vector<std::vector<std::string>> results(6);
    for (int c = 0; c < 6; ++c) {
        auto& client = d.add_client();
        testutil::drive(client, c, 0, 10, results[static_cast<std::size_t>(c)]);
    }
    d.sim.run_until(10 * sim::kSecond);
    for (const auto& r : results) EXPECT_EQ(r.size(), 10u);
    EXPECT_LT(d.replicas[1]->stats().batches_ordered + 60, 120u);
}

TEST(Zyzzyva, TamperedOrderReqRejected) {
    ZyzzyvaDeployment d;
    // Corrupt primary->replica2 order-req traffic: replica 2 then diverges
    // from the others, but clients still make progress via the slow path
    // with the 3 consistent replicas... with f=1 and 3f+1 needed for fast
    // path, fast path fails but 2f+1 slow path succeeds.
    d.net.set_tamper([](NodeId from, NodeId to, Bytes& data) {
        if (from == 1 && to == 2 && !data.empty() &&
            data[0] == static_cast<std::uint8_t>(Kind::kOrderReq)) {
            data.back() ^= 1;
        }
        return sim::TamperAction::kDeliver;
    });
    auto& client = d.add_client();
    std::vector<std::string> results;
    testutil::drive(client, 0, 0, 3, results);
    d.sim.run_until(10 * sim::kSecond);
    EXPECT_EQ(results.size(), 3u);
    // Replica 2 rejected the corrupted order-reqs.
    EXPECT_EQ(d.replicas[1]->stats().requests_executed, 0u);
}

}  // namespace
}  // namespace neo::baselines
