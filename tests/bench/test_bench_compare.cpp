// Suite-diff logic: direction heuristic, tolerance resolution, and the
// classification the CI perf gate trusts.
#include <gtest/gtest.h>

#include <string>

#include "harness/bench_json.hpp"
#include "harness/compare.hpp"

using namespace neo::bench;

namespace {

// A one-point suite with a single metric mean, in the real schema.
Json suite_with(const std::string& point, const std::string& metric, double mean) {
    Json m = Json::object();
    m.set("mean", Json(mean));
    Json metrics = Json::object();
    metrics.set(metric, m);
    Json p = Json::object();
    p.set("name", Json(point));
    p.set("metrics", metrics);
    Json points = Json::array();
    points.push_back(p);
    Json s = Json::object();
    s.set("schema", Json(std::string("neo-bench-suite@1")));
    s.set("suite", Json(std::string("test")));
    s.set("points", points);
    return s;
}

}  // namespace

TEST(CompareDirection, LatencyAndDropShapedNamesRegressUpward) {
    EXPECT_TRUE(metric_lower_is_better("p99_us"));
    EXPECT_TRUE(metric_lower_is_better("service_ns"));
    EXPECT_TRUE(metric_lower_is_better("recovered_ms"));
    EXPECT_TRUE(metric_lower_is_better("cpu_us_per_op"));
    EXPECT_TRUE(metric_lower_is_better("tail_drops"));
    EXPECT_FALSE(metric_lower_is_better("tput_ops"));
    EXPECT_FALSE(metric_lower_is_better("delivered_mpps"));
    EXPECT_FALSE(metric_lower_is_better("signed_pct"));
    EXPECT_FALSE(metric_lower_is_better("completed"));
}

TEST(CompareTolerance, PointQualifiedOverrideWins) {
    CompareConfig cfg;
    cfg.tolerance = 0.15;
    cfg.metric_tolerance["p99_us"] = 0.30;
    cfg.metric_tolerance["aom_hm.r4:p99_us"] = 0.05;
    EXPECT_DOUBLE_EQ(tolerance_for(cfg, "aom_hm.r4", "p99_us"), 0.05);
    EXPECT_DOUBLE_EQ(tolerance_for(cfg, "aom_hm.r8", "p99_us"), 0.30);
    EXPECT_DOUBLE_EQ(tolerance_for(cfg, "aom_hm.r8", "tput_ops"), 0.15);
}

TEST(CompareSuites, WithinToleranceIsOk) {
    CompareConfig cfg;
    CompareReport r = compare_suites(suite_with("p", "tput_ops", 100),
                                     suite_with("p", "tput_ops", 95), cfg);
    ASSERT_TRUE(r.errors.empty());
    ASSERT_EQ(r.deltas.size(), 1u);
    EXPECT_EQ(r.deltas[0].status, DeltaStatus::kOk);
    EXPECT_TRUE(r.ok());
}

TEST(CompareSuites, ThroughputDropRegresses) {
    CompareConfig cfg;
    CompareReport r = compare_suites(suite_with("p", "tput_ops", 100),
                                     suite_with("p", "tput_ops", 50), cfg);
    ASSERT_EQ(r.deltas.size(), 1u);
    EXPECT_EQ(r.deltas[0].status, DeltaStatus::kRegressed);
    EXPECT_EQ(r.regressions(), 1u);
    EXPECT_FALSE(r.ok());
}

TEST(CompareSuites, ThroughputGainImprovesNotRegresses) {
    CompareConfig cfg;
    CompareReport r = compare_suites(suite_with("p", "tput_ops", 100),
                                     suite_with("p", "tput_ops", 200), cfg);
    EXPECT_EQ(r.deltas[0].status, DeltaStatus::kImproved);
    EXPECT_TRUE(r.ok());
}

TEST(CompareSuites, LatencyGrowthRegresses) {
    CompareConfig cfg;
    CompareReport r = compare_suites(suite_with("p", "p99_us", 10),
                                     suite_with("p", "p99_us", 20), cfg);
    EXPECT_EQ(r.deltas[0].status, DeltaStatus::kRegressed);
    // ...and shrinking latency is an improvement.
    r = compare_suites(suite_with("p", "p99_us", 20), suite_with("p", "p99_us", 10), cfg);
    EXPECT_EQ(r.deltas[0].status, DeltaStatus::kImproved);
}

TEST(CompareSuites, ZeroBaselineIsSkippedNotDivided) {
    CompareConfig cfg;
    CompareReport r = compare_suites(suite_with("p", "tail_drops", 0),
                                     suite_with("p", "tail_drops", 5), cfg);
    ASSERT_EQ(r.deltas.size(), 1u);
    EXPECT_EQ(r.deltas[0].status, DeltaStatus::kZeroBaseline);
    EXPECT_TRUE(r.ok());
}

TEST(CompareSuites, MissingPointOrMetricIsStructuralError) {
    CompareConfig cfg;
    CompareReport missing_point = compare_suites(suite_with("p", "tput_ops", 100),
                                                 suite_with("other", "tput_ops", 100), cfg);
    EXPECT_FALSE(missing_point.ok());
    EXPECT_FALSE(missing_point.errors.empty());

    CompareReport missing_metric = compare_suites(suite_with("p", "tput_ops", 100),
                                                  suite_with("p", "p99_us", 100), cfg);
    EXPECT_FALSE(missing_metric.ok());
    EXPECT_FALSE(missing_metric.errors.empty());
}

TEST(CompareSuites, ExtraCandidatePointsAreIgnored) {
    Json cand = suite_with("p", "tput_ops", 100);
    Json extra = Json::object();
    extra.set("name", Json(std::string("new_point")));
    extra.set("metrics", Json::object());
    // Append a point the baseline does not know about.
    Json points = Json::array();
    points.push_back(cand.at("points").items()[0]);
    points.push_back(extra);
    cand.set("points", points);
    CompareConfig cfg;
    CompareReport r = compare_suites(suite_with("p", "tput_ops", 100), cand, cfg);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.deltas.size(), 1u);
}

TEST(CompareSuites, WrongSchemaIsStructuralError) {
    Json bad = suite_with("p", "tput_ops", 100);
    bad.set("schema", Json(std::string("something-else@9")));
    CompareConfig cfg;
    CompareReport r = compare_suites(bad, suite_with("p", "tput_ops", 100), cfg);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.errors.empty());
}

TEST(CompareSuites, HostMetricsNeverGateAndNeverError) {
    CompareConfig cfg;
    // A 10x wall-clock blowup is reported but is not a regression.
    CompareReport r = compare_suites(suite_with("p", "host_ns", 1e6),
                                     suite_with("p", "host_ns", 1e7), cfg);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.deltas.empty());
    ASSERT_EQ(r.host_deltas.size(), 1u);
    EXPECT_EQ(r.host_deltas[0].metric, "host_ns");
    EXPECT_NEAR(r.host_deltas[0].rel_delta, 9.0, 1e-9);

    // A baseline recorded with host_ns compared against a candidate without
    // it (or vice versa) is not schema drift.
    CompareReport missing = compare_suites(suite_with("p", "host_ns", 1e6),
                                           suite_with("p", "tput_ops", 100), cfg);
    EXPECT_TRUE(missing.errors.empty());
    EXPECT_TRUE(missing.host_deltas.empty());
}

TEST(CompareSuites, StripHostMetricsRemovesOnlyHostFields) {
    EXPECT_TRUE(is_host_metric("host_ns"));
    EXPECT_TRUE(is_host_metric("host_rss_bytes"));
    EXPECT_FALSE(is_host_metric("tput_ops"));
    EXPECT_FALSE(is_host_metric("p99_us"));

    Json s = suite_with("p", "tput_ops", 100);
    Json m = Json::object();
    m.set("mean", Json(5e6));
    // suite_with built a one-metric object; rebuild the point with both.
    Json metrics = Json::object();
    metrics.set("tput_ops", s.at("points").items()[0].at("metrics").at("tput_ops"));
    metrics.set("host_ns", m);
    Json p = Json::object();
    p.set("name", Json(std::string("p")));
    p.set("metrics", metrics);
    Json points = Json::array();
    points.push_back(p);
    s.set("points", points);

    Json stripped = strip_host_metrics(s);
    const Json& sm = stripped.at("points").items()[0].at("metrics");
    EXPECT_NE(sm.find("tput_ops"), nullptr);
    EXPECT_EQ(sm.find("host_ns"), nullptr);
    // Stripping an already-clean suite is the identity.
    EXPECT_EQ(strip_host_metrics(stripped).dump(), stripped.dump());
}

TEST(CompareSuites, Tolerance_boundary_is_inclusive) {
    // Exactly at tolerance must NOT regress (CI gates on strict excess).
    CompareConfig cfg;
    cfg.tolerance = 0.15;
    CompareReport r = compare_suites(suite_with("p", "tput_ops", 100),
                                     suite_with("p", "tput_ops", 85), cfg);
    EXPECT_EQ(r.deltas[0].status, DeltaStatus::kOk);
}

// ---------- micro mode (google-benchmark JSON) ----------

namespace {

/// A google-benchmark document with one iteration row per (name, cpu_time).
Json micro_with(std::initializer_list<std::pair<const char*, double>> rows) {
    Json benchmarks = Json::array();
    for (const auto& [name, cpu] : rows) {
        Json b = Json::object();
        b.set("name", Json(std::string(name)));
        b.set("run_type", Json(std::string("iteration")));
        b.set("cpu_time", Json(cpu));
        b.set("time_unit", Json(std::string("ns")));
        benchmarks.push_back(b);
    }
    Json doc = Json::object();
    doc.set("context", Json::object());
    doc.set("benchmarks", benchmarks);
    return doc;
}

}  // namespace

TEST(CompareMicro, WithinToleranceIsOk) {
    CompareConfig cfg;
    cfg.tolerance = 0.20;
    CompareReport rep = compare_micro(micro_with({{"BM_EcdsaVerify", 100000.0}}),
                                      micro_with({{"BM_EcdsaVerify", 115000.0}}), cfg);
    ASSERT_EQ(rep.deltas.size(), 1u);
    EXPECT_EQ(rep.deltas[0].status, DeltaStatus::kOk);
    EXPECT_TRUE(rep.ok());
}

TEST(CompareMicro, CpuTimeGrowthBeyondToleranceRegresses) {
    CompareConfig cfg;
    cfg.tolerance = 0.20;
    CompareReport rep = compare_micro(micro_with({{"BM_Sha256/64", 500.0}}),
                                      micro_with({{"BM_Sha256/64", 650.0}}), cfg);
    ASSERT_EQ(rep.deltas.size(), 1u);
    EXPECT_EQ(rep.deltas[0].status, DeltaStatus::kRegressed);
    EXPECT_EQ(rep.regressions(), 1u);
}

TEST(CompareMicro, SpeedupImprovesNotRegresses) {
    CompareConfig cfg;
    cfg.tolerance = 0.20;
    CompareReport rep = compare_micro(micro_with({{"BM_EcdsaVerifyBatch/16", 2000.0}}),
                                      micro_with({{"BM_EcdsaVerifyBatch/16", 1000.0}}), cfg);
    ASSERT_EQ(rep.deltas.size(), 1u);
    EXPECT_EQ(rep.deltas[0].status, DeltaStatus::kImproved);
    EXPECT_TRUE(rep.ok());
}

TEST(CompareMicro, MissingBenchmarkIsStructuralError) {
    CompareConfig cfg;
    CompareReport rep = compare_micro(micro_with({{"BM_A", 1.0}, {"BM_B", 2.0}}),
                                      micro_with({{"BM_A", 1.0}}), cfg);
    EXPECT_EQ(rep.errors.size(), 1u);
    EXPECT_FALSE(rep.ok());
}

TEST(CompareMicro, ExtraCandidateBenchmarksIgnored) {
    CompareConfig cfg;
    CompareReport rep = compare_micro(micro_with({{"BM_A", 1.0}}),
                                      micro_with({{"BM_A", 1.0}, {"BM_New", 9.0}}), cfg);
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.deltas.size(), 1u);
}

TEST(CompareMicro, AggregateRowsSkipped) {
    // An aggregate row with a wildly different cpu_time must not gate:
    // only the matching iteration row is compared.
    Json agg = Json::object();
    agg.set("name", Json(std::string("BM_A")));
    agg.set("run_type", Json(std::string("aggregate")));
    agg.set("cpu_time", Json(9e9));
    Json benchmarks = Json::array();
    benchmarks.push_back(agg);
    Json row = Json::object();
    row.set("name", Json(std::string("BM_A")));
    row.set("run_type", Json(std::string("iteration")));
    row.set("cpu_time", Json(100.0));
    benchmarks.push_back(row);
    Json cand = Json::object();
    cand.set("benchmarks", benchmarks);
    CompareConfig cfg;
    CompareReport rep = compare_micro(micro_with({{"BM_A", 100.0}}), cand, cfg);
    ASSERT_EQ(rep.deltas.size(), 1u);
    EXPECT_EQ(rep.deltas[0].status, DeltaStatus::kOk);
}

TEST(CompareMicro, NotABenchmarkDocumentIsError) {
    CompareConfig cfg;
    CompareReport rep = compare_micro(suite_with("p", "tput_ops", 1),
                                      micro_with({{"BM_A", 1.0}}), cfg);
    EXPECT_FALSE(rep.errors.empty());
}
