// The suite-schema JSON value: parsing, building, canonical formatting,
// and the byte-stable round-trip the compare tool depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "harness/bench_json.hpp"

using neo::bench::Json;
using neo::bench::JsonError;

TEST(BenchJson, ParsesScalars) {
    EXPECT_TRUE(Json::parse("null").is_null());
    EXPECT_TRUE(Json::parse("true").boolean());
    EXPECT_FALSE(Json::parse("false").boolean());
    EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").number(), -1250.0);
    EXPECT_EQ(Json::parse("\"hi\"").string(), "hi");
}

TEST(BenchJson, ParsesNestedStructure) {
    Json v = Json::parse(R"({"a":[1,2,{"b":"x"}],"c":{"d":null}})");
    ASSERT_TRUE(v.is_object());
    const Json& a = v.at("a");
    ASSERT_TRUE(a.is_array());
    ASSERT_EQ(a.items().size(), 3u);
    EXPECT_DOUBLE_EQ(a.items()[0].number(), 1.0);
    EXPECT_EQ(a.items()[2].at("b").string(), "x");
    EXPECT_TRUE(v.at("c").at("d").is_null());
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_THROW(v.at("missing"), JsonError);
}

TEST(BenchJson, ParsesStringEscapes) {
    Json v = Json::parse(R"("line\nquote\"slash\\u:\u0041")");
    EXPECT_EQ(v.string(), "line\nquote\"slash\\u:A");
}

TEST(BenchJson, RejectsMalformedInput) {
    EXPECT_THROW(Json::parse(""), JsonError);
    EXPECT_THROW(Json::parse("{"), JsonError);
    EXPECT_THROW(Json::parse("[1,]"), JsonError);
    EXPECT_THROW(Json::parse("{\"a\":1} trailing"), JsonError);
    EXPECT_THROW(Json::parse("nul"), JsonError);
    EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
}

TEST(BenchJson, TypeMismatchThrows) {
    Json v = Json::parse("[1]");
    EXPECT_THROW(v.number(), JsonError);
    EXPECT_THROW(v.string(), JsonError);
    EXPECT_THROW(v.members(), JsonError);
}

TEST(BenchJson, FormatNumberCanonical) {
    EXPECT_EQ(Json::format_number(0), "0");
    EXPECT_EQ(Json::format_number(-3), "-3");
    EXPECT_EQ(Json::format_number(1e12), "1000000000000");
    EXPECT_EQ(Json::format_number(0.5), "0.5");
    EXPECT_EQ(Json::format_number(std::nan("")), "null");
}

TEST(BenchJson, ObjectPreservesInsertionOrder) {
    Json o = Json::object();
    o.set("z", Json(1.0));
    o.set("a", Json(2.0));
    EXPECT_EQ(o.dump(), R"({"z":1,"a":2})");
}

TEST(BenchJson, SetOverwritesExistingKey) {
    Json o = Json::object();
    o.set("k", Json(1.0));
    o.set("k", Json(2.0));
    EXPECT_EQ(o.dump(), R"({"k":2})");
}

TEST(BenchJson, RoundTripIsByteStable) {
    const std::string doc =
        R"({"schema":"neo-bench-suite@1","points":[{"name":"p","metrics":)"
        R"({"m":{"mean":76.92307692307692,"values":[76.92307692307692,13]}}}]})";
    EXPECT_EQ(Json::parse(doc).dump(), doc);
    // And a second pass through the parser stays fixed.
    EXPECT_EQ(Json::parse(Json::parse(doc).dump()).dump(), doc);
}

TEST(BenchJson, ParseFileReadsAndThrowsOnMissing) {
    const std::string path = ::testing::TempDir() + "bench_json_test.json";
    {
        std::ofstream f(path);
        f << R"({"x":[true,false]})";
    }
    Json v = Json::parse_file(path);
    EXPECT_TRUE(v.at("x").items()[0].boolean());
    std::remove(path.c_str());
    EXPECT_THROW(Json::parse_file(path), JsonError);
}
