// BenchMain / BenchOptions: uniform CLI parsing, multi-seed fan-out on the
// pool, per-seed labelling, aggregation and the suite JSON schema.
#include <gtest/gtest.h>

#include <cstdlib>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/bench_json.hpp"
#include "harness/runner.hpp"

using namespace neo::bench;

namespace {

// Owns the strings backing a synthetic argv.
struct Argv {
    std::vector<std::string> strs;
    std::vector<char*> ptrs;
    Argv(std::initializer_list<std::string> args) : strs(args) {
        for (auto& s : strs) ptrs.push_back(s.data());
    }
    int argc() { return static_cast<int>(ptrs.size()); }
    char** argv() { return ptrs.data(); }
};

}  // namespace

TEST(BenchOptions, ParsesUniformFlags) {
    Argv a{"prog", "--json", "/tmp/out.json", "--seed", "9", "--seeds", "3",
           "--jobs", "2", "--quick", "--something-else"};
    BenchOptions o = BenchOptions::parse(a.argc(), a.argv());
    EXPECT_EQ(o.json_path, "/tmp/out.json");
    EXPECT_EQ(o.base_seed, 9u);
    EXPECT_EQ(o.seeds, 3);
    EXPECT_EQ(o.jobs, 2u);
    EXPECT_TRUE(o.quick);
}

TEST(BenchOptions, EqualsFormAndDefaults) {
    Argv a{"prog", "--seed=5", "--seeds=2"};
    BenchOptions o = BenchOptions::parse(a.argc(), a.argv());
    EXPECT_EQ(o.base_seed, 5u);
    EXPECT_EQ(o.seeds, 2);
    EXPECT_EQ(o.jobs, 1u);  // parallelism is opt-in
    EXPECT_FALSE(o.quick);
    EXPECT_TRUE(o.json_path.empty());
}

TEST(BenchOptions, JobsZeroMeansAllCores) {
    Argv a{"prog", "--jobs", "0"};
    BenchOptions o = BenchOptions::parse(a.argc(), a.argv());
    EXPECT_GE(o.jobs, 1u);
}

TEST(BenchOptions, EnvFallback) {
    ::setenv("NEO_BENCH_SEEDS", "4", 1);
    ::setenv("NEO_BENCH_SEED", "11", 1);
    Argv a{"prog"};
    BenchOptions o = BenchOptions::parse(a.argc(), a.argv());
    ::unsetenv("NEO_BENCH_SEEDS");
    ::unsetenv("NEO_BENCH_SEED");
    EXPECT_EQ(o.seeds, 4);
    EXPECT_EQ(o.base_seed, 11u);
    // Flags beat the environment.
    ::setenv("NEO_BENCH_SEED", "11", 1);
    Argv b{"prog", "--seed", "3"};
    EXPECT_EQ(BenchOptions::parse(b.argc(), b.argv()).base_seed, 3u);
    ::unsetenv("NEO_BENCH_SEED");
}

TEST(MetricStats, Aggregates) {
    MetricStats s;
    s.values = {7, 8, 9};
    EXPECT_DOUBLE_EQ(s.mean(), 8.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 1.0);
    EXPECT_DOUBLE_EQ(s.min(), 7.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    MetricStats one;
    one.values = {3};
    EXPECT_DOUBLE_EQ(one.stddev(), 0.0);  // sample stddev undefined for n=1
}

TEST(BenchMain, RunsEverySeedInOrderWithSeedLabels) {
    Argv a{"prog", "--seed", "7", "--seeds", "3", "--jobs", "2"};
    BenchMain bm(a.argc(), a.argv(), "test_suite");
    std::vector<PointResult> results = bm.run({{
        "p1",
        {{"x", 1}},
        [](RunCtx& ctx) {
            std::string expected = "p1.s" + std::to_string(ctx.seed());
            return std::map<std::string, double>{
                {"seed_val", static_cast<double>(ctx.seed())},
                {"label_ok", ctx.label() == expected ? 1.0 : 0.0},
            };
        },
    }});
    ASSERT_EQ(results.size(), 1u);
    // Values land in seed order regardless of which worker ran them.
    EXPECT_EQ(results[0].metrics.at("seed_val").values, (std::vector<double>{7, 8, 9}));
    EXPECT_EQ(results[0].metrics.at("label_ok").values, (std::vector<double>{1, 1, 1}));
    EXPECT_DOUBLE_EQ(results[0].mean("seed_val"), 8.0);
    EXPECT_DOUBLE_EQ(results[0].mean("absent_metric"), 0.0);
}

TEST(BenchMain, RunExceptionPropagatesAfterDrain) {
    Argv a{"prog", "--seeds", "2", "--jobs", "2"};
    BenchMain bm(a.argc(), a.argv(), "test_suite");
    EXPECT_THROW(bm.run({{
                     "bad",
                     {},
                     [](RunCtx& ctx) -> std::map<std::string, double> {
                         if (ctx.seed() == 43) throw std::runtime_error("seed 43 failed");
                         return {{"m", 1.0}};
                     },
                 }}),
                 std::runtime_error);
}

TEST(BenchMain, QuickFlagReachesRunCtx) {
    Argv a{"prog", "--quick"};
    BenchMain bm(a.argc(), a.argv(), "test_suite");
    ASSERT_TRUE(bm.quick());
    auto results = bm.run({{
        "p",
        {},
        [](RunCtx& ctx) {
            return std::map<std::string, double>{{"quick", ctx.quick() ? 1.0 : 0.0}};
        },
    }});
    EXPECT_DOUBLE_EQ(results[0].mean("quick"), 1.0);
}

TEST(BenchMain, WritesSuiteJsonInSchema) {
    const std::string path = ::testing::TempDir() + "bench_runner_suite.json";
    Argv a{"prog", "--seeds", "2", "--seed", "5", "--json", path};
    {
        BenchMain bm(a.argc(), a.argv(), "json_suite");
        bm.run({{
            "p1",
            {{"n", 4}},
            [](RunCtx& ctx) {
                return std::map<std::string, double>{{"m", static_cast<double>(ctx.seed()) * 2}};
            },
        }});
    }  // destructor flushes
    Json doc = Json::parse_file(path);
    EXPECT_EQ(doc.at("schema").string(), "neo-bench-suite@1");
    EXPECT_EQ(doc.at("suite").string(), "json_suite");
    EXPECT_DOUBLE_EQ(doc.at("base_seed").number(), 5);
    EXPECT_DOUBLE_EQ(doc.at("seeds").number(), 2);
    EXPECT_FALSE(doc.at("quick").boolean());
    const auto& points = doc.at("points").items();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].at("name").string(), "p1");
    EXPECT_DOUBLE_EQ(points[0].at("params").at("n").number(), 4);
    const Json& m = points[0].at("metrics").at("m");
    EXPECT_DOUBLE_EQ(m.at("mean").number(), 11);  // (10 + 12) / 2
    ASSERT_EQ(m.at("values").items().size(), 2u);
    EXPECT_DOUBLE_EQ(m.at("values").items()[0].number(), 10);
    EXPECT_DOUBLE_EQ(m.at("values").items()[1].number(), 12);
    std::remove(path.c_str());
}

TEST(BenchSuite, PointLookup) {
    BenchSuite s;
    PointResult p;
    p.name = "a";
    s.points.push_back(p);
    EXPECT_NE(s.point("a"), nullptr);
    EXPECT_EQ(s.point("b"), nullptr);
}
