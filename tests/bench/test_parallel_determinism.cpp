// Integration: a multi-seed sweep fanned across a 4-worker pool must
// produce byte-identical results to the same sweep run sequentially —
// scheduling must never leak into the science. Runs under the `tsan` label
// too: concurrent Simulator instances sharing a process is exactly what
// ThreadSanitizer needs to see.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "harness/bench_json.hpp"
#include "harness/compare.hpp"
#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

std::vector<BenchPointSpec> sweep_points() {
    std::vector<BenchPointSpec> points;
    // A NeoBFT point where the seed visibly matters (random drops).
    points.push_back({
        "neo_hm.drops",
        {{"drop_rate_pct", 0.1}},
        [](RunCtx& ctx) {
            NeoParams p;
            p.n_clients = 4;
            p.seed = ctx.seed();
            p.drop_rate = 0.001;
            p.receiver.gap_timeout = 100 * sim::kMicrosecond;
            auto d = make_neobft(p);
            auto obs = ctx.attach(*d);
            Measured m = run_closed_loop(*d, echo_ops(64), 2 * sim::kMillisecond,
                                         8 * sim::kMillisecond);
            return std::map<std::string, double>{{"tput_ops", m.throughput_ops},
                                                 {"p50_us", m.p50_us},
                                                 {"completed", static_cast<double>(m.completed)}};
        },
    });
    // A baseline point, so the sweep mixes deployment types.
    points.push_back({
        "pbft.c4",
        {{"clients", 4}},
        [](RunCtx& ctx) {
            CommonParams p;
            p.n_clients = 4;
            p.seed = ctx.seed();
            auto d = make_pbft(p);
            auto obs = ctx.attach(*d);
            Measured m = run_closed_loop(*d, echo_ops(64), 2 * sim::kMillisecond,
                                         8 * sim::kMillisecond);
            return std::map<std::string, double>{{"tput_ops", m.throughput_ops},
                                                 {"p50_us", m.p50_us},
                                                 {"completed", static_cast<double>(m.completed)}};
        },
    });
    return points;
}

std::string run_sweep(const std::string& jobs) {
    std::vector<std::string> strs = {"prog", "--seeds", "2", "--jobs", jobs};
    std::vector<char*> argv;
    for (auto& s : strs) argv.push_back(s.data());
    BenchMain bm(static_cast<int>(argv.size()), argv.data(), "determinism_sweep");
    bm.run(sweep_points());
    // host_* wall-clock metrics are the one sanctioned nondeterminism in a
    // suite document; everything else must be byte-identical.
    return strip_host_metrics(Json::parse(bm.suite().to_json())).dump() + "\n";
}

}  // namespace

TEST(ParallelDeterminism, FourJobSweepIsByteIdenticalToSequential) {
    std::string sequential = run_sweep("1");
    std::string parallel = run_sweep("4");
    EXPECT_EQ(sequential, parallel);

    // Sanity on the content: both seeds completed work, and the drop-point
    // seeds genuinely differ (so the equality above is not vacuous).
    Json doc = Json::parse(sequential);
    const Json& drop_values =
        doc.at("points").items()[0].at("metrics").at("completed").at("values");
    ASSERT_EQ(drop_values.items().size(), 2u);
    EXPECT_GT(drop_values.items()[0].number(), 0);
    EXPECT_GT(drop_values.items()[1].number(), 0);
    const Json& tput_values =
        doc.at("points").items()[0].at("metrics").at("tput_ops").at("values");
    EXPECT_NE(tput_values.items()[0].number(), tput_values.items()[1].number());
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreStable) {
    EXPECT_EQ(run_sweep("4"), run_sweep("4"));
}
