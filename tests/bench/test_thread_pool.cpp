// Work-stealing thread pool: completeness, result/exception propagation,
// shutdown-under-load. All tests carry the `tsan` label — they are the
// first line of the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/thread_pool.hpp"

using neo::bench::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedTask) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 1000; ++i) {
            pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
        }
    }  // destructor drains
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SingleWorkerStillDrains) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 100; ++i) {
            pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
        }
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, AsyncReturnsValues) {
    ThreadPool pool(3);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 64; ++i) {
        futs.push_back(pool.async([i] { return i * i; }));
    }
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
    }
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
    ThreadPool pool(2);
    auto ok = pool.async([] { return 7; });
    auto bad = pool.async([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ExceptionDoesNotKillWorkers) {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
        pool.async([] { throw std::runtime_error("boom"); });  // futures dropped
    }
    // Workers must survive to run later tasks.
    auto after = pool.async([] { return 41 + 1; });
    EXPECT_EQ(after.get(), 42);
}

TEST(ThreadPool, ShutdownDrainsPendingWork) {
    // More slow tasks than workers: at destruction time most of the work is
    // still queued, and all of it must still run.
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                count.fetch_add(1, std::memory_order_relaxed);
            });
        }
    }
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ConcurrentSubmitters) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        std::vector<std::thread> submitters;
        for (int t = 0; t < 4; ++t) {
            submitters.emplace_back([&pool, &count] {
                for (int i = 0; i < 250; ++i) {
                    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
                }
            });
        }
        for (auto& t : submitters) t.join();
    }
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
    // A task enqueued from a worker thread must also be drained by shutdown.
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 16; ++i) {
            pool.submit([&pool, &count] {
                pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
            });
        }
    }
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, DefaultJobsIsPositive) {
    EXPECT_GE(ThreadPool::default_jobs(), 1u);
}
