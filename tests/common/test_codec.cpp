#include "common/codec.hpp"

#include <gtest/gtest.h>

#include "common/hex.hpp"

namespace neo {
namespace {

TEST(Codec, RoundTripPrimitives) {
    Writer w;
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.i64(-42);
    w.boolean(true);
    w.boolean(false);

    Reader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_TRUE(r.at_end());
}

TEST(Codec, LittleEndianLayout) {
    Writer w;
    w.u32(0x01020304);
    ASSERT_EQ(w.bytes().size(), 4u);
    EXPECT_EQ(w.bytes()[0], 0x04);
    EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Codec, BlobRoundTrip) {
    Writer w;
    w.blob(to_bytes("hello"));
    w.str("world");
    Reader r(w.bytes());
    EXPECT_EQ(to_string(r.blob()), "hello");
    EXPECT_EQ(r.str(), "world");
    EXPECT_TRUE(r.at_end());
}

TEST(Codec, EmptyBlob) {
    Writer w;
    w.blob({});
    Reader r(w.bytes());
    EXPECT_TRUE(r.blob().empty());
    EXPECT_TRUE(r.at_end());
}

TEST(Codec, RawAndDigest) {
    Digest32 d{};
    for (std::size_t i = 0; i < d.size(); ++i) d[i] = static_cast<std::uint8_t>(i);
    Writer w;
    w.raw(BytesView(d.data(), d.size()));
    Reader r(w.bytes());
    EXPECT_EQ(r.digest32(), d);
}

TEST(Codec, TruncatedReadThrows) {
    Writer w;
    w.u16(7);
    Reader r(w.bytes());
    EXPECT_THROW(r.u32(), CodecError);
}

TEST(Codec, TruncatedBlobThrows) {
    Writer w;
    w.u32(100);  // declares 100 bytes, provides none
    Reader r(w.bytes());
    EXPECT_THROW(r.blob(), CodecError);
}

TEST(Codec, BlobLengthCapEnforced) {
    Writer w;
    w.u32(0xffffffffu);  // hostile length
    Reader r(w.bytes());
    EXPECT_THROW(r.blob(), CodecError);
}

TEST(Codec, BlobCustomCap) {
    Writer w;
    w.blob(Bytes(64, 0x5a));
    Reader r(w.bytes());
    EXPECT_THROW(r.blob(/*max=*/16), CodecError);
}

TEST(Codec, InvalidBooleanThrows) {
    Bytes b{2};
    Reader r(b);
    EXPECT_THROW(r.boolean(), CodecError);
}

TEST(Codec, ExpectEndRejectsTrailingGarbage) {
    Writer w;
    w.u8(1);
    w.u8(2);
    Reader r(w.bytes());
    r.u8();
    EXPECT_THROW(r.expect_end(), CodecError);
    r.u8();
    EXPECT_NO_THROW(r.expect_end());
}

TEST(Codec, RemainingTracksPosition) {
    Writer w;
    w.u64(1);
    Reader r(w.bytes());
    EXPECT_EQ(r.remaining(), 8u);
    r.u32();
    EXPECT_EQ(r.remaining(), 4u);
}

TEST(Codec, NestedMessagePattern) {
    // Typical usage: a signed wrapper whose body is itself a message.
    Writer inner;
    inner.u32(42);
    inner.str("op");
    Writer outer;
    outer.blob(inner.bytes());
    outer.blob(to_bytes("signature"));

    Reader r(outer.bytes());
    Bytes body = r.blob();
    Bytes sig = r.blob();
    r.expect_end();
    Reader rb(body);
    EXPECT_EQ(rb.u32(), 42u);
    EXPECT_EQ(rb.str(), "op");
    EXPECT_EQ(to_string(sig), "signature");
}

TEST(Bytes, CtEqual) {
    EXPECT_TRUE(ct_equal(to_bytes("abc"), to_bytes("abc")));
    EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("abd")));
    EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("abcd")));
    EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, Concat) {
    Bytes c = concat(to_bytes("ab"), to_bytes("cd"));
    EXPECT_EQ(to_string(c), "abcd");
}

}  // namespace
}  // namespace neo
