#include "common/hex.hpp"

#include <gtest/gtest.h>

namespace neo {
namespace {

TEST(Hex, Encode) {
    Bytes b{0x00, 0x01, 0xab, 0xff};
    EXPECT_EQ(to_hex(b), "0001abff");
}

TEST(Hex, EncodeEmpty) { EXPECT_EQ(to_hex({}), ""); }

TEST(Hex, DecodeLower) {
    auto b = from_hex("deadbeef");
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, DecodeUpperAndMixed) {
    auto b = from_hex("DeAdBeEf");
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, DecodeOddLengthFails) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, DecodeInvalidCharFails) {
    EXPECT_FALSE(from_hex("zz").has_value());
    EXPECT_FALSE(from_hex("0g").has_value());
}

TEST(Hex, RoundTrip) {
    Bytes b;
    for (int i = 0; i < 256; ++i) b.push_back(static_cast<std::uint8_t>(i));
    auto back = from_hex(to_hex(b));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, b);
}

TEST(Hex, StrictThrowsOnInvalid) {
    EXPECT_THROW(from_hex_strict("xyz"), std::invalid_argument);
    EXPECT_EQ(from_hex_strict("ff"), Bytes{0xff});
}

}  // namespace
}  // namespace neo
