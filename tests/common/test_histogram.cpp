#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace neo {
namespace {

TEST(Histogram, BasicStats) {
    Histogram h;
    for (int i = 1; i <= 100; ++i) h.add(i);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, MedianOfUniform) {
    Histogram h;
    for (int i = 1; i <= 101; ++i) h.add(i);
    EXPECT_DOUBLE_EQ(h.percentile(50), 51.0);
}

TEST(Histogram, PercentileEndpoints) {
    Histogram h;
    for (int i = 0; i < 10; ++i) h.add(i);
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 9.0);
}

TEST(Histogram, PercentileInterpolates) {
    Histogram h;
    h.add(0);
    h.add(10);
    EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(25), 2.5);
}

TEST(Histogram, SingleSample) {
    Histogram h;
    h.add(7);
    EXPECT_DOUBLE_EQ(h.percentile(0), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.9), 7.0);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(Histogram, AddAfterPercentileResorts) {
    Histogram h;
    h.add(5);
    h.add(1);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    h.add(0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Histogram, CdfMonotonic) {
    Histogram h;
    for (int i = 0; i < 1000; ++i) h.add(i * i % 997);
    auto cdf = h.cdf(50);
    ASSERT_EQ(cdf.size(), 50u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GT(cdf[i].second, cdf[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(cdf.front().second, 0.0);
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, ClearResets) {
    Histogram h;
    h.add(1);
    h.clear();
    EXPECT_TRUE(h.empty());
    h.add(2);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

}  // namespace
}  // namespace neo
