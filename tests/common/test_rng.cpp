#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace neo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInBounds) {
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(r.uniform(13), 13u);
    }
}

TEST(Rng, UniformCoversAllValues) {
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(r.uniform(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval) {
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceApproximatesProbability) {
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 100000; ++i) {
        if (r.chance(0.1)) ++hits;
    }
    EXPECT_NEAR(hits / 100000.0, 0.1, 0.01);
}

TEST(Rng, ChanceZeroAndOne) {
    Rng r(15);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, BytesFillsRequestedLength) {
    Rng r(17);
    Bytes b = r.bytes(33);
    EXPECT_EQ(b.size(), 33u);
    // Random bytes should not be all identical.
    bool all_same = true;
    for (auto x : b) all_same = all_same && (x == b[0]);
    EXPECT_FALSE(all_same);
}

TEST(Rng, ForkProducesIndependentStream) {
    Rng a(21);
    Rng forked = a.fork();
    // The forked stream should differ from the parent's continuation.
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == forked.next()) ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkDeterministic) {
    Rng a(33), b(33);
    Rng fa = a.fork(), fb = b.fork();
    for (int i = 0; i < 50; ++i) EXPECT_EQ(fa.next(), fb.next());
}

// ------------------------------------------------------------------ streams
// StreamRng is the parallel engine's RNG: one counter-based stream per
// (seed, stream id), so a node's draw sequence is a pure function of its
// identity — never of which partition ran first.

TEST(StreamRng, PureFunctionOfSeedAndStream) {
    StreamRng a(42, 7), b(42, 7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(StreamRng, StreamsAreIndependent) {
    StreamRng a(42, 1), b(42, 2), c(43, 1);
    int same_ab = 0, same_ac = 0;
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.next();
        if (va == b.next()) ++same_ab;
        if (va == c.next()) ++same_ac;
    }
    EXPECT_LT(same_ab, 3);
    EXPECT_LT(same_ac, 3);
}

TEST(StreamRng, InterleavingNeverPerturbsAStream) {
    // The serial engine draws node streams in one order, the parallel
    // engine in another. A stream's outputs depend only on its own draw
    // count — interleave three streams arbitrarily and each must reproduce
    // its solo sequence.
    std::vector<std::uint64_t> solo[3];
    for (std::uint64_t s = 0; s < 3; ++s) {
        StreamRng r(99, s);
        for (int i = 0; i < 64; ++i) solo[s].push_back(r.next());
    }
    StreamRng r0(99, 0), r1(99, 1), r2(99, 2);
    StreamRng* streams[3] = {&r0, &r1, &r2};
    std::size_t taken[3] = {0, 0, 0};
    Rng scheduler(5);  // adversarial draw order
    for (int i = 0; i < 3 * 64; ++i) {
        std::uint64_t s = scheduler.uniform(3);
        while (taken[s] >= 64) s = (s + 1) % 3;
        EXPECT_EQ(streams[s]->next(), solo[s][taken[s]++]);
    }
}

TEST(StreamRng, PositionCountsDraws) {
    StreamRng r(1, 1);
    EXPECT_EQ(r.position(), 0u);
    r.next();
    r.bytes(10);
    EXPECT_GT(r.position(), 1u);
}

}  // namespace
}  // namespace neo
