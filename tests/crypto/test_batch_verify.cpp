// Shared-precomputation batch ECDSA verification: fast path, bisecting
// isolation of forged signatures, and equivalence with one-shot verify.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/batch_verify.hpp"
#include "crypto/sha256.hpp"

namespace neo::crypto {
namespace {

struct KeyPair {
    EcdsaPrivateKey priv;
    EcdsaPublicKey pub;
};

KeyPair make_keys(std::uint64_t seed) {
    Rng rng(seed);
    EcdsaPrivateKey priv = EcdsaPrivateKey::from_seed(rng.bytes(32));
    return {priv, ecdsa_derive_public(priv)};
}

BatchVerifyItem make_item(const KeyPair& kp, const std::string& msg) {
    BatchVerifyItem item;
    item.pub = &kp.pub;
    item.digest = sha256(msg);
    item.sig = ecdsa_sign(kp.priv, item.digest);
    return item;
}

TEST(BatchVerify, AllValidTakesFastPath) {
    KeyPair kp = make_keys(1);
    std::vector<BatchVerifyItem> items;
    for (int i = 0; i < 8; ++i) items.push_back(make_item(kp, "msg " + std::to_string(i)));

    BatchVerifyStats stats;
    std::vector<bool> out = ecdsa_verify_batch(items, &stats);
    for (bool ok : out) EXPECT_TRUE(ok);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.items, 8u);
    EXPECT_EQ(stats.fast_path_batches, 1u);
    EXPECT_EQ(stats.bisect_batches, 0u);
    EXPECT_EQ(stats.leaf_rechecks, 0u);
    EXPECT_EQ(stats.tables_built, 1u);  // one distinct signer
}

TEST(BatchVerify, SingleForgedSignatureIsolated) {
    KeyPair kp = make_keys(2);
    std::vector<BatchVerifyItem> items;
    for (int i = 0; i < 8; ++i) items.push_back(make_item(kp, "m" + std::to_string(i)));
    // Forge exactly one: signature over a different message than claimed.
    items[5].sig = ecdsa_sign(kp.priv, sha256("something else"));

    BatchVerifyStats stats;
    std::vector<bool> out = ecdsa_verify_batch(items, &stats);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i != 5) << i;
    EXPECT_EQ(stats.fast_path_batches, 0u);
    EXPECT_EQ(stats.bisect_batches, 1u);
    EXPECT_EQ(stats.leaf_rechecks, 1u);  // only the forged singleton recheck
    EXPECT_GT(stats.bisect_steps, 0u);
}

TEST(BatchVerify, AllForgedAllRejected) {
    KeyPair signer = make_keys(3);
    KeyPair other = make_keys(4);
    std::vector<BatchVerifyItem> items;
    for (int i = 0; i < 5; ++i) {
        BatchVerifyItem item = make_item(other, "f" + std::to_string(i));
        item.pub = &signer.pub;  // claimed signer never signed these
        items.push_back(item);
    }
    BatchVerifyStats stats;
    std::vector<bool> out = ecdsa_verify_batch(items, &stats);
    for (bool ok : out) EXPECT_FALSE(ok);
    EXPECT_EQ(stats.leaf_rechecks, 5u);
}

TEST(BatchVerify, MixedSignersShareTablesPerKey) {
    KeyPair a = make_keys(5);
    KeyPair b = make_keys(6);
    std::vector<BatchVerifyItem> items;
    for (int i = 0; i < 4; ++i) {
        items.push_back(make_item(i % 2 ? a : b, "mix " + std::to_string(i)));
    }
    BatchVerifyStats stats;
    std::vector<bool> out = ecdsa_verify_batch(items, &stats);
    for (bool ok : out) EXPECT_TRUE(ok);
    EXPECT_EQ(stats.tables_built, 2u);  // one per distinct public key
}

TEST(BatchVerify, CallerCachedTablesSkipBuilding) {
    KeyPair kp = make_keys(7);
    QTable table(kp.pub.q);
    std::vector<BatchVerifyItem> items;
    for (int i = 0; i < 4; ++i) {
        BatchVerifyItem item = make_item(kp, "cached " + std::to_string(i));
        item.table = &table;
        items.push_back(item);
    }
    BatchVerifyStats stats;
    std::vector<bool> out = ecdsa_verify_batch(items, &stats);
    for (bool ok : out) EXPECT_TRUE(ok);
    EXPECT_EQ(stats.tables_built, 0u);
}

TEST(BatchVerify, DegenerateItemsRejectedWithoutRecheck) {
    KeyPair kp = make_keys(8);
    std::vector<BatchVerifyItem> items;
    items.push_back(make_item(kp, "good"));

    BatchVerifyItem no_key = make_item(kp, "no key");
    no_key.pub = nullptr;
    items.push_back(no_key);

    BatchVerifyItem zero_r = make_item(kp, "zero r");
    zero_r.sig.r = Scalar();
    items.push_back(zero_r);

    std::vector<bool> out = ecdsa_verify_batch(items);
    EXPECT_TRUE(out[0]);
    EXPECT_FALSE(out[1]);
    EXPECT_FALSE(out[2]);
}

TEST(BatchVerify, EmptyBatch) {
    BatchVerifyStats stats;
    EXPECT_TRUE(ecdsa_verify_batch({}, &stats).empty());
    EXPECT_EQ(stats.batches, 0u);
}

TEST(BatchVerify, MatchesOneShotVerifyOnRandomBatches) {
    // Randomised agreement check across valid/forged mixes: the batch path
    // must return exactly what ecdsa_verify returns item by item.
    Rng rng(99);
    KeyPair kps[3] = {make_keys(10), make_keys(11), make_keys(12)};
    for (int round = 0; round < 4; ++round) {
        std::vector<BatchVerifyItem> items;
        for (int i = 0; i < 9; ++i) {
            const KeyPair& kp = kps[rng.uniform(3)];
            BatchVerifyItem item = make_item(kp, "r" + std::to_string(round * 16 + i));
            if (rng.uniform(3) == 0) item.digest = sha256("tampered");
            items.push_back(item);
        }
        std::vector<bool> batch = ecdsa_verify_batch(items);
        for (std::size_t i = 0; i < items.size(); ++i) {
            EXPECT_EQ(batch[i], ecdsa_verify(*items[i].pub, items[i].digest, items[i].sig)) << i;
        }
    }
}

}  // namespace
}  // namespace neo::crypto
