// Host-side crypto tuning switches (HostCryptoTuning: batch verification,
// the cross-node shared verdict memo, SIMD SipHash) change HOST wall-clock
// only. These tests run full real-crypto deployments with each switch
// flipped — and with batching on across PDES partition counts — and
// byte-compare the serialized trace streams plus the derived metrics. Any
// verdict, timing or charging difference between the paths shows up here
// as a trace diff.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "crypto/tuning.hpp"
#include "harness/harness.hpp"
#include "obs/trace.hpp"

namespace neo::bench {
namespace {

/// Applies a tuning combination for the duration of a scope.
struct TuningGuard {
    TuningGuard(bool batch, bool shared, bool simd) {
        crypto::HostCryptoTuning& t = crypto::host_crypto_tuning();
        prev_batch_ = t.batch_verify.exchange(batch);
        prev_shared_ = t.shared_memo.exchange(shared);
        prev_simd_ = t.simd_siphash.exchange(simd);
    }
    ~TuningGuard() {
        crypto::HostCryptoTuning& t = crypto::host_crypto_tuning();
        t.batch_verify.store(prev_batch_);
        t.shared_memo.store(prev_shared_);
        t.simd_siphash.store(prev_simd_);
    }
    bool prev_batch_, prev_shared_, prev_simd_;
};

struct Stream {
    std::string jsonl;
    std::map<std::string, double> phase;
    std::uint64_t completed = 0;
};

Stream run_bn(unsigned sim_threads) {
    NeoParams p;
    p.n_replicas = 4;
    p.n_clients = 6;
    p.seed = 23;
    p.sim_threads = sim_threads;
    p.crypto_mode = crypto::CryptoMode::kReal;
    p.variant = NeoVariant::kBn;  // signed confirm batches -> verify_batch
    std::unique_ptr<Deployment> d = make_neobft(p);

    obs::TraceSink sink;
    d->simulator().set_trace(&sink);
    Measured m = run_closed_loop(*d, echo_ops(64), sim::kMillisecond, 3 * sim::kMillisecond);
    d->simulator().set_trace(nullptr);

    Stream s;
    std::ostringstream os;
    sink.write_jsonl(os);
    s.jsonl = os.str();
    s.phase = m.phase;
    s.completed = m.completed;
    return s;
}

TEST(CryptoDeterminism, TuningSwitchesPreserveTraceBytes) {
    Stream all_on = [&] {
        TuningGuard g(true, true, true);
        return run_bn(1);
    }();
    ASSERT_GT(all_on.completed, 0u);
    ASSERT_FALSE(all_on.jsonl.empty());

    struct Combo {
        const char* name;
        bool batch, shared, simd;
    };
    const Combo combos[] = {
        {"batch_off", false, true, true},
        {"shared_off", true, false, true},
        {"simd_off", true, true, false},
        {"all_off", false, false, false},
    };
    for (const Combo& c : combos) {
        TuningGuard g(c.batch, c.shared, c.simd);
        Stream s = run_bn(1);
        EXPECT_EQ(all_on.jsonl, s.jsonl) << c.name;
        EXPECT_EQ(all_on.completed, s.completed) << c.name;
        EXPECT_EQ(all_on.phase, s.phase) << c.name;
    }
}

TEST(CryptoDeterminism, BatchingIdenticalAcrossSimThreads) {
    TuningGuard g(true, true, true);
    Stream serial = run_bn(1);
    Stream parallel = run_bn(8);
    ASSERT_GT(serial.completed, 0u);
    EXPECT_EQ(serial.jsonl, parallel.jsonl);
    EXPECT_EQ(serial.completed, parallel.completed);
    EXPECT_EQ(serial.phase, parallel.phase);
}

}  // namespace
}  // namespace neo::bench
