#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"

namespace neo::crypto {
namespace {

struct KeyPair {
    EcdsaPrivateKey priv;
    EcdsaPublicKey pub;
};

KeyPair make_keys(std::uint64_t seed) {
    Rng rng(seed);
    EcdsaPrivateKey priv = EcdsaPrivateKey::from_seed(rng.bytes(32));
    return {priv, ecdsa_derive_public(priv)};
}

TEST(Ecdsa, SignVerifyRoundTrip) {
    KeyPair kp = make_keys(1);
    Digest32 h = sha256("commit request 42");
    EcdsaSignature sig = ecdsa_sign(kp.priv, h);
    EXPECT_TRUE(ecdsa_verify(kp.pub, h, sig));
}

TEST(Ecdsa, Deterministic) {
    KeyPair kp = make_keys(2);
    Digest32 h = sha256("message");
    EXPECT_EQ(ecdsa_sign(kp.priv, h), ecdsa_sign(kp.priv, h));
}

TEST(Ecdsa, DifferentMessagesDifferentSignatures) {
    KeyPair kp = make_keys(3);
    EXPECT_NE(ecdsa_sign(kp.priv, sha256("a")), ecdsa_sign(kp.priv, sha256("b")));
}

TEST(Ecdsa, WrongMessageRejected) {
    KeyPair kp = make_keys(4);
    EcdsaSignature sig = ecdsa_sign(kp.priv, sha256("real"));
    EXPECT_FALSE(ecdsa_verify(kp.pub, sha256("forged"), sig));
}

TEST(Ecdsa, WrongKeyRejected) {
    KeyPair signer = make_keys(5);
    KeyPair other = make_keys(6);
    Digest32 h = sha256("msg");
    EcdsaSignature sig = ecdsa_sign(signer.priv, h);
    EXPECT_FALSE(ecdsa_verify(other.pub, h, sig));
}

TEST(Ecdsa, TamperedSignatureComponentsRejected) {
    KeyPair kp = make_keys(7);
    Digest32 h = sha256("msg");
    EcdsaSignature sig = ecdsa_sign(kp.priv, h);

    EcdsaSignature bad_r = sig;
    bad_r.r = sig.r.add(Scalar::one());
    EXPECT_FALSE(ecdsa_verify(kp.pub, h, bad_r));

    EcdsaSignature bad_s = sig;
    bad_s.s = sig.s.add(Scalar::one());
    EXPECT_FALSE(ecdsa_verify(kp.pub, h, bad_s));
}

TEST(Ecdsa, SerializeParseRoundTrip) {
    KeyPair kp = make_keys(8);
    EcdsaSignature sig = ecdsa_sign(kp.priv, sha256("x"));
    Bytes wire = sig.serialize();
    EXPECT_EQ(wire.size(), 64u);
    auto parsed = EcdsaSignature::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, sig);
}

TEST(Ecdsa, ParseRejectsZeroComponents) {
    Bytes zeros(64, 0);
    EXPECT_FALSE(EcdsaSignature::parse(zeros).has_value());
}

TEST(Ecdsa, ParseRejectsOutOfRange) {
    Bytes wire(64, 0xff);  // r = s = 2^256-1 >= n
    EXPECT_FALSE(EcdsaSignature::parse(wire).has_value());
}

TEST(Ecdsa, ParseRejectsBadLength) {
    EXPECT_FALSE(EcdsaSignature::parse(Bytes(63, 1)).has_value());
}

TEST(Ecdsa, ZeroedSignatureRejectedByVerify) {
    KeyPair kp = make_keys(9);
    EcdsaSignature zero{Scalar::zero(), Scalar::zero()};
    EXPECT_FALSE(ecdsa_verify(kp.pub, sha256("m"), zero));
}

TEST(Ecdsa, PublicKeySerializeParse) {
    KeyPair kp = make_keys(10);
    auto parsed = EcdsaPublicKey::parse(kp.pub.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->q, kp.pub.q);
}

TEST(Ecdsa, ParsePublicKeyRejectsOffCurve) {
    KeyPair kp = make_keys(11);
    Bytes b = kp.pub.serialize();
    b[10] ^= 0x40;
    EXPECT_FALSE(EcdsaPublicKey::parse(b).has_value());
}

TEST(Ecdsa, ManyKeysRoundTrip) {
    // Broad sweep: each keypair signs and verifies; cross-verification fails.
    std::vector<KeyPair> keys;
    for (std::uint64_t i = 0; i < 8; ++i) keys.push_back(make_keys(100 + i));
    Digest32 h = sha256("sweep");
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EcdsaSignature sig = ecdsa_sign(keys[i].priv, h);
        for (std::size_t j = 0; j < keys.size(); ++j) {
            EXPECT_EQ(ecdsa_verify(keys[j].pub, h, sig), i == j) << i << "," << j;
        }
    }
}

TEST(Ecdsa, PrivateKeyFromSeedNeverZero) {
    EcdsaPrivateKey k = EcdsaPrivateKey::from_seed(Bytes(32, 0));
    EXPECT_FALSE(k.d.is_zero());
}

class EcdsaSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcdsaSeedSweep, RoundTripAcrossSeeds) {
    KeyPair kp = make_keys(GetParam());
    Digest32 h = sha256("parameterized");
    EcdsaSignature sig = ecdsa_sign(kp.priv, h);
    EXPECT_TRUE(ecdsa_verify(kp.pub, h, sig));
    h[0] ^= 1;
    EXPECT_FALSE(ecdsa_verify(kp.pub, h, sig));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdsaSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
}  // namespace neo::crypto
