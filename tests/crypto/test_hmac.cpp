#include "crypto/hmac_sha256.hpp"

#include <gtest/gtest.h>

#include "common/hex.hpp"

namespace neo::crypto {
namespace {

std::string hex_of(const Digest32& d) { return to_hex(BytesView(d.data(), d.size())); }

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
    Bytes key(20, 0x0b);
    EXPECT_EQ(hex_of(hmac_sha256(key, to_bytes("Hi There"))),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 (key shorter than block size).
TEST(HmacSha256, Rfc4231Case2) {
    EXPECT_EQ(hex_of(hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"))),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3 (0xaa * 20 key, 0xdd * 50 data).
TEST(HmacSha256, Rfc4231Case3) {
    Bytes key(20, 0xaa);
    Bytes data(50, 0xdd);
    EXPECT_EQ(hex_of(hmac_sha256(key, data)),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6 (key longer than block size -> hashed first).
TEST(HmacSha256, Rfc4231Case6LongKey) {
    Bytes key(131, 0xaa);
    EXPECT_EQ(hex_of(hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, ExactBlockSizeKey) {
    Bytes key(64, 0x7f);
    Digest32 a = hmac_sha256(key, to_bytes("msg"));
    Digest32 b = hmac_sha256(key, to_bytes("msg"));
    EXPECT_EQ(a, b);
    EXPECT_NE(a, hmac_sha256(Bytes(64, 0x7e), to_bytes("msg")));
}

TEST(HmacSha256, KeySensitivity) {
    EXPECT_NE(hmac_sha256(to_bytes("k1"), to_bytes("m")),
              hmac_sha256(to_bytes("k2"), to_bytes("m")));
}

TEST(HmacSha256, MessageSensitivity) {
    EXPECT_NE(hmac_sha256(to_bytes("k"), to_bytes("m1")),
              hmac_sha256(to_bytes("k"), to_bytes("m2")));
}

TEST(HmacSha256, TruncatedTag) {
    Bytes tag = hmac_sha256_tag(to_bytes("key"), to_bytes("data"), 8);
    EXPECT_EQ(tag.size(), 8u);
    Digest32 full = hmac_sha256(to_bytes("key"), to_bytes("data"));
    EXPECT_TRUE(std::equal(tag.begin(), tag.end(), full.begin()));
}

// A precomputed key reused across many MACs must agree with the one-shot
// function for every key-length class (short, exactly block-sized, hashed
// long key) and across message sizes spanning block boundaries.
TEST(HmacSha256, PrecomputedKeyMatchesOneShot) {
    for (std::size_t key_len : {3u, 20u, 63u, 64u, 65u, 131u}) {
        Bytes key(key_len, static_cast<std::uint8_t>(0x40 + key_len));
        HmacSha256Key pre(key);
        for (std::size_t msg_len : {0u, 1u, 55u, 56u, 64u, 200u}) {
            Bytes msg(msg_len, 0xd1);
            EXPECT_EQ(pre.mac(msg), hmac_sha256(key, msg))
                << "key_len=" << key_len << " msg_len=" << msg_len;
        }
    }
}

}  // namespace
}  // namespace neo::crypto
