#include "crypto/identity.hpp"

#include <gtest/gtest.h>

namespace neo::crypto {
namespace {

class IdentityTest : public ::testing::TestWithParam<CryptoMode> {
  protected:
    TrustRoot root{GetParam(), /*seed=*/7};
};

TEST_P(IdentityTest, SignVerify) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes msg = to_bytes("request payload");
    Bytes sig = alice->sign(msg);
    EXPECT_EQ(sig.size(), kSignatureSize);
    EXPECT_TRUE(bob->verify(1, msg, sig));
}

TEST_P(IdentityTest, WrongSignerRejected) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes msg = to_bytes("payload");
    Bytes sig = alice->sign(msg);
    EXPECT_FALSE(bob->verify(2, msg, sig));
}

TEST_P(IdentityTest, TamperedMessageRejected) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes msg = to_bytes("payload");
    Bytes sig = alice->sign(msg);
    Bytes tampered = msg;
    tampered[0] ^= 1;
    EXPECT_FALSE(bob->verify(1, tampered, sig));
}

TEST_P(IdentityTest, TamperedSignatureRejected) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes msg = to_bytes("payload");
    Bytes sig = alice->sign(msg);
    sig[5] ^= 0x10;
    EXPECT_FALSE(bob->verify(1, msg, sig));
}

TEST_P(IdentityTest, TruncatedSignatureRejected) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes sig = alice->sign(to_bytes("m"));
    sig.pop_back();
    EXPECT_FALSE(bob->verify(1, to_bytes("m"), sig));
}

TEST_P(IdentityTest, PairwiseMacs) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes msg = to_bytes("prepare digest");
    Bytes tag = alice->mac_for(2, msg);
    EXPECT_EQ(tag.size(), kMacSize);
    EXPECT_TRUE(bob->check_mac_from(1, msg, tag));
}

TEST_P(IdentityTest, MacWrongPeerRejected) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    auto carol = root.provision(3);
    Bytes msg = to_bytes("x");
    Bytes tag = alice->mac_for(2, msg);
    // Carol shares a different key with Alice.
    EXPECT_FALSE(carol->check_mac_from(1, msg, tag));
}

TEST_P(IdentityTest, MacTamperRejected) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes msg = to_bytes("x");
    Bytes tag = alice->mac_for(2, msg);
    tag[0] ^= 1;
    EXPECT_FALSE(bob->check_mac_from(1, msg, tag));
}

TEST_P(IdentityTest, CostMeterAccumulates) {
    auto alice = root.provision(1);
    const auto& costs = root.costs();
    EXPECT_EQ(alice->meter().drain(), 0);
    EXPECT_EQ(alice->meter().drain_async(), 0);
    (void)alice->sign(to_bytes("m"));
    EXPECT_EQ(alice->meter().drain(), costs.ecdsa_dispatch_ns);
    EXPECT_EQ(alice->meter().drain_async(), costs.ecdsa_sign_ns);
    EXPECT_EQ(alice->meter().signs, 1u);
    (void)alice->mac_for(2, to_bytes("m"));
    (void)alice->mac_for(2, to_bytes("m2"));
    EXPECT_EQ(alice->meter().drain(), 2 * costs.mac_ns);
    EXPECT_EQ(alice->meter().macs, 2u);
}

TEST_P(IdentityTest, HashChargesSizeDependentCost) {
    auto alice = root.provision(1);
    const auto& costs = root.costs();
    (void)alice->hash(Bytes(100, 0));
    EXPECT_EQ(alice->meter().drain(), costs.hash_base_ns + 100 * costs.hash_per_byte_ns);
}

TEST_P(IdentityTest, UnmeteredVerifyMatchesMetered) {
    auto alice = root.provision(1);
    Bytes msg = to_bytes("m");
    Bytes sig = alice->sign(msg);
    EXPECT_TRUE(root.verify_unmetered(1, msg, sig));
    EXPECT_FALSE(root.verify_unmetered(2, msg, sig));
}

TEST_P(IdentityTest, DeterministicAcrossRoots) {
    TrustRoot root2{GetParam(), /*seed=*/7};
    auto a1 = root.provision(1);
    auto a2 = root2.provision(1);
    Bytes msg = to_bytes("m");
    EXPECT_EQ(a1->sign(msg), a2->sign(msg));
}

TEST_P(IdentityTest, DifferentSeedsDifferentKeys) {
    TrustRoot other{GetParam(), /*seed=*/8};
    auto a1 = root.provision(1);
    auto a2 = other.provision(1);
    Bytes msg = to_bytes("m");
    EXPECT_NE(a1->sign(msg), a2->sign(msg));
}

INSTANTIATE_TEST_SUITE_P(Modes, IdentityTest,
                         ::testing::Values(CryptoMode::kReal, CryptoMode::kModeled),
                         [](const auto& info) {
                             return info.param == CryptoMode::kReal ? "Real" : "Modeled";
                         });

TEST(IdentityReal, PublicKeyLookup) {
    TrustRoot root{CryptoMode::kReal, 3};
    auto alice = root.provision(9);
    const EcdsaPublicKey& pk = root.public_key(9);
    EXPECT_TRUE(pk.q.on_curve());
    EXPECT_FALSE(pk.q.infinity);
}

TEST(IdentityModes, RealAndModeledSignaturesDiffer) {
    TrustRoot real{CryptoMode::kReal, 5};
    TrustRoot modeled{CryptoMode::kModeled, 5};
    auto ar = real.provision(1);
    auto am = modeled.provision(1);
    EXPECT_NE(ar->sign(to_bytes("m")), am->sign(to_bytes("m")));
}

}  // namespace
}  // namespace neo::crypto
