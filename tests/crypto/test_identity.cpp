#include "crypto/identity.hpp"

#include <gtest/gtest.h>

namespace neo::crypto {
namespace {

class IdentityTest : public ::testing::TestWithParam<CryptoMode> {
  protected:
    TrustRoot root{GetParam(), /*seed=*/7};
};

TEST_P(IdentityTest, SignVerify) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes msg = to_bytes("request payload");
    Bytes sig = alice->sign(msg);
    EXPECT_EQ(sig.size(), kSignatureSize);
    EXPECT_TRUE(bob->verify(1, msg, sig));
}

TEST_P(IdentityTest, WrongSignerRejected) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes msg = to_bytes("payload");
    Bytes sig = alice->sign(msg);
    EXPECT_FALSE(bob->verify(2, msg, sig));
}

TEST_P(IdentityTest, TamperedMessageRejected) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes msg = to_bytes("payload");
    Bytes sig = alice->sign(msg);
    Bytes tampered = msg;
    tampered[0] ^= 1;
    EXPECT_FALSE(bob->verify(1, tampered, sig));
}

TEST_P(IdentityTest, TamperedSignatureRejected) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes msg = to_bytes("payload");
    Bytes sig = alice->sign(msg);
    sig[5] ^= 0x10;
    EXPECT_FALSE(bob->verify(1, msg, sig));
}

TEST_P(IdentityTest, TruncatedSignatureRejected) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes sig = alice->sign(to_bytes("m"));
    sig.pop_back();
    EXPECT_FALSE(bob->verify(1, to_bytes("m"), sig));
}

TEST_P(IdentityTest, PairwiseMacs) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes msg = to_bytes("prepare digest");
    Bytes tag = alice->mac_for(2, msg);
    EXPECT_EQ(tag.size(), kMacSize);
    EXPECT_TRUE(bob->check_mac_from(1, msg, tag));
}

TEST_P(IdentityTest, MacWrongPeerRejected) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    auto carol = root.provision(3);
    Bytes msg = to_bytes("x");
    Bytes tag = alice->mac_for(2, msg);
    // Carol shares a different key with Alice.
    EXPECT_FALSE(carol->check_mac_from(1, msg, tag));
}

TEST_P(IdentityTest, MacTamperRejected) {
    auto alice = root.provision(1);
    auto bob = root.provision(2);
    Bytes msg = to_bytes("x");
    Bytes tag = alice->mac_for(2, msg);
    tag[0] ^= 1;
    EXPECT_FALSE(bob->check_mac_from(1, msg, tag));
}

TEST_P(IdentityTest, CostMeterAccumulates) {
    auto alice = root.provision(1);
    const auto& costs = root.costs();
    EXPECT_EQ(alice->meter().drain(), 0);
    EXPECT_EQ(alice->meter().drain_async(), 0);
    (void)alice->sign(to_bytes("m"));
    EXPECT_EQ(alice->meter().drain(), costs.ecdsa_dispatch_ns);
    EXPECT_EQ(alice->meter().drain_async(), costs.ecdsa_sign_ns);
    EXPECT_EQ(alice->meter().signs, 1u);
    (void)alice->mac_for(2, to_bytes("m"));
    (void)alice->mac_for(2, to_bytes("m2"));
    EXPECT_EQ(alice->meter().drain(), 2 * costs.mac_ns);
    EXPECT_EQ(alice->meter().macs, 2u);
}

TEST_P(IdentityTest, HashChargesSizeDependentCost) {
    auto alice = root.provision(1);
    const auto& costs = root.costs();
    (void)alice->hash(Bytes(100, 0));
    EXPECT_EQ(alice->meter().drain(), costs.hash_base_ns + 100 * costs.hash_per_byte_ns);
}

TEST_P(IdentityTest, UnmeteredVerifyMatchesMetered) {
    auto alice = root.provision(1);
    Bytes msg = to_bytes("m");
    Bytes sig = alice->sign(msg);
    EXPECT_TRUE(root.verify_unmetered(1, msg, sig));
    EXPECT_FALSE(root.verify_unmetered(2, msg, sig));
}

TEST_P(IdentityTest, DeterministicAcrossRoots) {
    TrustRoot root2{GetParam(), /*seed=*/7};
    auto a1 = root.provision(1);
    auto a2 = root2.provision(1);
    Bytes msg = to_bytes("m");
    EXPECT_EQ(a1->sign(msg), a2->sign(msg));
}

TEST_P(IdentityTest, DifferentSeedsDifferentKeys) {
    TrustRoot other{GetParam(), /*seed=*/8};
    auto a1 = root.provision(1);
    auto a2 = other.provision(1);
    Bytes msg = to_bytes("m");
    EXPECT_NE(a1->sign(msg), a2->sign(msg));
}

INSTANTIATE_TEST_SUITE_P(Modes, IdentityTest,
                         ::testing::Values(CryptoMode::kReal, CryptoMode::kModeled),
                         [](const auto& info) {
                             return info.param == CryptoMode::kReal ? "Real" : "Modeled";
                         });

TEST(IdentityReal, PublicKeyLookup) {
    TrustRoot root{CryptoMode::kReal, 3};
    auto alice = root.provision(9);
    const EcdsaPublicKey& pk = root.public_key(9);
    EXPECT_TRUE(pk.q.on_curve());
    EXPECT_FALSE(pk.q.infinity);
}

TEST(IdentityModes, RealAndModeledSignaturesDiffer) {
    TrustRoot real{CryptoMode::kReal, 5};
    TrustRoot modeled{CryptoMode::kModeled, 5};
    auto ar = real.provision(1);
    auto am = modeled.provision(1);
    EXPECT_NE(ar->sign(to_bytes("m")), am->sign(to_bytes("m")));
}

// ---------- host-side fast paths must not change virtual charging ----------

/// Flips one tuning switch for a scope and restores it on exit.
struct SwitchGuard {
    std::atomic<bool>& flag;
    bool prev;
    SwitchGuard(std::atomic<bool>& f, bool v) : flag(f), prev(f.exchange(v)) {}
    ~SwitchGuard() { flag.store(prev); }
};

struct Charge {
    std::int64_t sync, async;
    std::uint64_t verifies;
    friend bool operator==(const Charge&, const Charge&) = default;
};

Charge drain(NodeCrypto& c) {
    Charge ch{c.meter().drain(), c.meter().drain_async(), c.meter().verifies};
    c.meter().reset_counters();
    return ch;
}

TEST(IdentityBatch, BatchAndMemoPathsChargeIdenticalVirtualCost) {
    // Four host paths resolve the same verify_batch call: cold batch
    // verification, warm node-private memo, warm shared memo, and plain
    // per-item verification with every switch off. The virtual CostMeter
    // charge must be identical on all of them — host optimisations are
    // invisible to the simulation.
    TrustRoot root{CryptoMode::kReal, 17};
    auto signer = root.provision(1);
    std::vector<NodeCrypto::BatchItem> items;
    std::vector<Bytes> sigs;
    for (int i = 0; i < 6; ++i) {
        Bytes msg = to_bytes("batched message " + std::to_string(i));
        sigs.push_back(signer->sign(msg));
        items.push_back({1, msg, BytesView()});
    }
    for (int i = 0; i < 6; ++i) items[static_cast<std::size_t>(i)].sig = sigs[static_cast<std::size_t>(i)];

    HostCryptoTuning& tuning = host_crypto_tuning();
    auto verify_all = [&](NodeCrypto& c) {
        std::vector<bool> out = c.verify_batch(items);
        for (bool ok : out) EXPECT_TRUE(ok);
        return drain(c);
    };

    auto cold = root.provision(2);
    Charge batch_cold = verify_all(*cold);      // batch path, all misses
    Charge memo_warm = verify_all(*cold);       // node-private memo hits
    auto shared_warm_node = root.provision(3);  // fresh node: shared memo hits
    Charge shared_warm = verify_all(*shared_warm_node);
    Charge plain = [&] {
        SwitchGuard g1(tuning.batch_verify, false);
        SwitchGuard g2(tuning.shared_memo, false);
        auto off = root.provision(4);
        return verify_all(*off);
    }();

    const auto& costs = root.costs();
    EXPECT_EQ(batch_cold.sync, costs.ecdsa_dispatch_ns);
    EXPECT_EQ(batch_cold.async, 6 * costs.ecdsa_verify_ns);
    EXPECT_EQ(batch_cold.verifies, 6u);
    EXPECT_EQ(memo_warm, batch_cold);
    EXPECT_EQ(shared_warm, batch_cold);
    EXPECT_EQ(plain, batch_cold);

    // And the host counters prove the paths actually differed.
    EXPECT_EQ(cold->batch_stats().batches, 1u);
    EXPECT_EQ(cold->batch_stats().fast_path_batches, 1u);
    EXPECT_EQ(shared_warm_node->batch_stats().batches, 0u);  // memo short-circuit
    EXPECT_GE(root.shared_memo_hits(), 6u);
}

TEST(IdentityBatch, ForgedSignatureIsolatedThroughNodeCrypto) {
    TrustRoot root{CryptoMode::kReal, 18};
    auto signer = root.provision(1);
    auto other = root.provision(2);
    auto verifier = root.provision(3);

    std::vector<Bytes> msgs;
    std::vector<Bytes> sigs;
    for (int i = 0; i < 5; ++i) {
        msgs.push_back(to_bytes("confirm " + std::to_string(i)));
        sigs.push_back(signer->sign(msgs.back()));
    }
    sigs[3] = other->sign(msgs[3]);  // forged: wrong key for claimed signer

    std::vector<NodeCrypto::BatchItem> items;
    for (int i = 0; i < 5; ++i) {
        items.push_back({1, msgs[static_cast<std::size_t>(i)], sigs[static_cast<std::size_t>(i)]});
    }
    std::vector<bool> out = verifier->verify_batch(items);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i != 3) << i;
    EXPECT_EQ(verifier->batch_stats().bisect_batches, 1u);
    EXPECT_EQ(verifier->batch_stats().leaf_rechecks, 1u);
    EXPECT_EQ(verifier->meter().verifies, 5u);  // virtual count unaffected
}

}  // namespace
}  // namespace neo::crypto
