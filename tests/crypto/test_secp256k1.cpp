#include "crypto/secp256k1.hpp"

#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/rng.hpp"

namespace neo::crypto {
namespace {

Fe fe_from_hex(std::string_view h) {
    auto f = Fe::from_be_bytes_checked(from_hex_strict(h));
    EXPECT_TRUE(f.has_value());
    return *f;
}

U256 u256_from_hex(std::string_view h) { return U256::from_be_bytes(from_hex_strict(h)); }

// ---------- U256 ----------

TEST(U256, BeBytesRoundTrip) {
    Bytes b = from_hex_strict("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20");
    U256 x = U256::from_be_bytes(b);
    Digest32 back = x.to_be_bytes();
    EXPECT_TRUE(std::equal(b.begin(), b.end(), back.begin()));
}

TEST(U256, LimbLayout) {
    U256 x = u256_from_hex("0000000000000004000000000000000300000000000000020000000000000001");
    EXPECT_EQ(x.v[0], 1u);
    EXPECT_EQ(x.v[1], 2u);
    EXPECT_EQ(x.v[2], 3u);
    EXPECT_EQ(x.v[3], 4u);
}

TEST(U256, Compare) {
    U256 a = u256_from_hex("0000000000000000000000000000000000000000000000000000000000000001");
    U256 b = u256_from_hex("0000000000000000000000000000000100000000000000000000000000000000");
    EXPECT_EQ(u256_cmp(a, b), -1);
    EXPECT_EQ(u256_cmp(b, a), 1);
    EXPECT_EQ(u256_cmp(a, a), 0);
}

TEST(U256, BitAccess) {
    U256 x = u256_from_hex("8000000000000000000000000000000000000000000000000000000000000001");
    EXPECT_TRUE(x.bit(0));
    EXPECT_FALSE(x.bit(1));
    EXPECT_TRUE(x.bit(255));
}

// ---------- Field ----------

TEST(Field, AddSubInverse) {
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        Fe a = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        Fe b = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        EXPECT_EQ(a.add(b).sub(b), a);
        EXPECT_EQ(a.sub(b).add(b), a);
    }
}

TEST(Field, AddCommutative) {
    Rng rng(2);
    for (int i = 0; i < 50; ++i) {
        Fe a = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        Fe b = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        EXPECT_EQ(a.add(b), b.add(a));
    }
}

TEST(Field, MulCommutativeAssociative) {
    Rng rng(3);
    for (int i = 0; i < 30; ++i) {
        Fe a = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        Fe b = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        Fe c = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        EXPECT_EQ(a.mul(b), b.mul(a));
        EXPECT_EQ(a.mul(b).mul(c), a.mul(b.mul(c)));
    }
}

TEST(Field, Distributive) {
    Rng rng(4);
    for (int i = 0; i < 30; ++i) {
        Fe a = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        Fe b = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        Fe c = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        EXPECT_EQ(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    }
}

TEST(Field, MulIdentityAndZero) {
    Fe a = fe_from_hex("00000000000000000000000000000000000000000000000000000000deadbeef");
    EXPECT_EQ(a.mul(Fe::one()), a);
    EXPECT_TRUE(a.mul(Fe::zero()).is_zero());
}

TEST(Field, Inverse) {
    Rng rng(5);
    for (int i = 0; i < 20; ++i) {
        Fe a = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        if (a.is_zero()) continue;
        EXPECT_EQ(a.mul(a.inverse()), Fe::one());
    }
}

TEST(Field, NegateAddsToZero) {
    Rng rng(6);
    for (int i = 0; i < 20; ++i) {
        Fe a = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        EXPECT_TRUE(a.add(a.negate()).is_zero());
    }
    EXPECT_TRUE(Fe::zero().negate().is_zero());
}

// p-1 squared: (-1)^2 = 1.
TEST(Field, PMinusOneSquared) {
    Fe neg1 = Fe::one().negate();
    EXPECT_EQ(neg1.sqr(), Fe::one());
}

TEST(Field, KnownProduct) {
    // 2 * (p+1)/2 = 1 mod p  <=>  inverse(2) = (p+1)/2.
    Fe two = Fe::from_u64(2);
    Fe inv2 = two.inverse();
    EXPECT_EQ(two.mul(inv2), Fe::one());
    // (p+1)/2 = 7fffffff ffffffff ffffffff ffffffff ffffffff ffffffff ffffffff 7ffffe18
    Fe expect = fe_from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffff7ffffe18");
    EXPECT_EQ(inv2, expect);
}

TEST(Field, RejectsValueAboveP) {
    // p itself must be rejected by the checked parser.
    auto f = Fe::from_be_bytes_checked(
        from_hex_strict("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"));
    EXPECT_FALSE(f.has_value());
    auto ok = Fe::from_be_bytes_checked(
        from_hex_strict("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2e"));
    EXPECT_TRUE(ok.has_value());
}

TEST(Field, FromU256ReducesModP) {
    // p + 5 reduces to 5.
    U256 p_plus5 = u256_from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc34");
    EXPECT_EQ(Fe::from_u256(p_plus5), Fe::from_u64(5));
}

TEST(Field, BatchInverseMatchesIndividual) {
    Rng rng(7);
    std::vector<Fe> elems;
    for (int i = 0; i < 17; ++i) {
        Fe a = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        if (a.is_zero()) a = Fe::one();
        elems.push_back(a);
    }
    std::vector<Fe> batch = elems;
    fe_batch_inverse(batch.data(), batch.size());
    for (std::size_t i = 0; i < elems.size(); ++i) {
        EXPECT_EQ(batch[i], elems[i].inverse()) << i;
    }
}

// ---------- Scalar ----------

TEST(Scalar, AddWrapsModN) {
    // (n-1) + 2 = 1 mod n.
    Scalar n_minus1 = *Scalar::from_be_bytes_checked(
        from_hex_strict("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364140"));
    EXPECT_EQ(n_minus1.add(Scalar::from_u64(2)), Scalar::one());
}

TEST(Scalar, MulInverse) {
    Rng rng(8);
    for (int i = 0; i < 20; ++i) {
        Scalar a = Scalar::from_be_bytes_reduce(rng.bytes(32));
        if (a.is_zero()) continue;
        EXPECT_EQ(a.mul(a.inverse()), Scalar::one());
    }
}

TEST(Scalar, MulCommutative) {
    Rng rng(9);
    for (int i = 0; i < 20; ++i) {
        Scalar a = Scalar::from_be_bytes_reduce(rng.bytes(32));
        Scalar b = Scalar::from_be_bytes_reduce(rng.bytes(32));
        EXPECT_EQ(a.mul(b), b.mul(a));
    }
}

TEST(Scalar, NegateAddsToZero) {
    Rng rng(10);
    for (int i = 0; i < 20; ++i) {
        Scalar a = Scalar::from_be_bytes_reduce(rng.bytes(32));
        EXPECT_TRUE(a.add(a.negate()).is_zero());
    }
}

TEST(Scalar, CheckedParseRejectsN) {
    auto s = Scalar::from_be_bytes_checked(
        from_hex_strict("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"));
    EXPECT_FALSE(s.has_value());
}

TEST(Scalar, ReduceHandlesMaxValue) {
    // 2^256 - 1 mod n = 2^256 - 1 - n = K - 1 where K = 2^256 - n.
    Scalar s = Scalar::from_be_bytes_reduce(Bytes(32, 0xff));
    Scalar expect = *Scalar::from_be_bytes_checked(
        from_hex_strict("000000000000000000000000000000014551231950b75fc4402da1732fc9bebe"));
    EXPECT_EQ(s, expect);
}

// ---------- Group ----------

TEST(Point, GeneratorOnCurve) {
    EXPECT_TRUE(AffinePoint::generator().on_curve());
}

TEST(Point, KnownDoubleOfG) {
    AffinePoint g2 = point_mul(AffinePoint::generator(), Scalar::from_u64(2));
    EXPECT_EQ(to_hex(BytesView(g2.x.to_be_bytes().data(), 32)),
              "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
    EXPECT_EQ(to_hex(BytesView(g2.y.to_be_bytes().data(), 32)),
              "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Point, GeneratorMulMatchesPointMul) {
    Rng rng(11);
    for (int i = 0; i < 10; ++i) {
        Scalar k = Scalar::from_be_bytes_reduce(rng.bytes(32));
        EXPECT_EQ(generator_mul(k), point_mul(AffinePoint::generator(), k)) << i;
    }
}

TEST(Point, SmallMultiplesViaAddition) {
    AffinePoint g = AffinePoint::generator();
    AffinePoint acc = g;
    for (std::uint64_t k = 2; k <= 16; ++k) {
        acc = point_add(acc, g);
        EXPECT_EQ(acc, generator_mul(Scalar::from_u64(k))) << k;
        EXPECT_TRUE(acc.on_curve()) << k;
    }
}

TEST(Point, NTimesGIsIdentity) {
    // n * G = infinity; (n-1) * G = -G.
    Scalar n_minus1 = Scalar::zero().add(Scalar::from_u64(1).negate());
    AffinePoint neg_g = generator_mul(n_minus1);
    AffinePoint g = AffinePoint::generator();
    EXPECT_EQ(neg_g.x, g.x);
    EXPECT_EQ(neg_g.y, g.y.negate());
    AffinePoint identity = point_add(neg_g, g);
    EXPECT_TRUE(identity.infinity);
}

TEST(Point, AdditionCommutative) {
    AffinePoint a = generator_mul(Scalar::from_u64(5));
    AffinePoint b = generator_mul(Scalar::from_u64(11));
    EXPECT_EQ(point_add(a, b), point_add(b, a));
}

TEST(Point, AdditionMatchesScalarSum) {
    Rng rng(12);
    for (int i = 0; i < 8; ++i) {
        Scalar a = Scalar::from_be_bytes_reduce(rng.bytes(32));
        Scalar b = Scalar::from_be_bytes_reduce(rng.bytes(32));
        AffinePoint lhs = point_add(generator_mul(a), generator_mul(b));
        AffinePoint rhs = generator_mul(a.add(b));
        EXPECT_EQ(lhs, rhs) << i;
    }
}

TEST(Point, IdentityIsNeutral) {
    AffinePoint g = AffinePoint::generator();
    AffinePoint inf;
    EXPECT_EQ(point_add(g, inf), g);
    EXPECT_EQ(point_add(inf, g), g);
    EXPECT_TRUE(point_add(inf, inf).infinity);
}

TEST(Point, MulByZeroIsIdentity) {
    EXPECT_TRUE(generator_mul(Scalar::zero()).infinity);
    EXPECT_TRUE(point_mul(AffinePoint::generator(), Scalar::zero()).infinity);
}

TEST(Point, DoubleMulMatchesSeparate) {
    Rng rng(13);
    AffinePoint q = generator_mul(Scalar::from_be_bytes_reduce(rng.bytes(32)));
    for (int i = 0; i < 5; ++i) {
        Scalar u1 = Scalar::from_be_bytes_reduce(rng.bytes(32));
        Scalar u2 = Scalar::from_be_bytes_reduce(rng.bytes(32));
        AffinePoint lhs = double_mul(u1, q, u2);
        AffinePoint rhs = point_add(generator_mul(u1), point_mul(q, u2));
        EXPECT_EQ(lhs, rhs) << i;
    }
}

TEST(Point, SerializeParseRoundTrip) {
    AffinePoint p = generator_mul(Scalar::from_u64(0x1234567));
    auto parsed = AffinePoint::parse(p.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
}

TEST(Point, ParseRejectsOffCurve) {
    Bytes b = AffinePoint::generator().serialize();
    b[63] ^= 1;  // perturb y
    EXPECT_FALSE(AffinePoint::parse(b).has_value());
}

TEST(Point, ParseRejectsBadLength) {
    EXPECT_FALSE(AffinePoint::parse(Bytes(63, 0)).has_value());
    EXPECT_FALSE(AffinePoint::parse(Bytes(65, 0)).has_value());
}

TEST(Point, MulDistributesOverAdd) {
    // k(P + Q) == kP + kQ
    AffinePoint p = generator_mul(Scalar::from_u64(3));
    AffinePoint q = generator_mul(Scalar::from_u64(77));
    Scalar k = Scalar::from_u64(0xabcdef);
    EXPECT_EQ(point_mul(point_add(p, q), k), point_add(point_mul(p, k), point_mul(q, k)));
}

// ---------- verification-side fast paths ----------

TEST(Field, SqrMatchesMul) {
    Rng rng(401);
    for (int i = 0; i < 32; ++i) {
        Fe a = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        EXPECT_EQ(a.sqr(), a.mul(a)) << i;
    }
}

TEST(Field, VartimeInverseMatchesFermat) {
    Rng rng(402);
    for (int i = 0; i < 16; ++i) {
        Fe a = Fe::from_u256(U256::from_be_bytes(rng.bytes(32)));
        if (a.is_zero()) continue;
        EXPECT_EQ(a.inverse_vartime(), a.inverse()) << i;
    }
    EXPECT_EQ(Fe::one().inverse_vartime(), Fe::one());
}

TEST(Scalar, SqrMatchesMul) {
    Rng rng(403);
    for (int i = 0; i < 32; ++i) {
        Scalar a = Scalar::from_be_bytes_reduce(rng.bytes(32));
        EXPECT_EQ(a.sqr(), a.mul(a)) << i;
    }
}

TEST(Scalar, VartimeInverseMatchesFermat) {
    Rng rng(404);
    for (int i = 0; i < 16; ++i) {
        Scalar a = Scalar::from_be_bytes_reduce(rng.bytes(32));
        if (a.is_zero()) continue;
        EXPECT_EQ(a.inverse_vartime(), a.inverse()) << i;
    }
    EXPECT_EQ(Scalar::one().inverse_vartime(), Scalar::one());
}

TEST(Scalar, BatchInverseMatchesIndividual) {
    Rng rng(405);
    std::vector<Scalar> elems;
    for (int i = 0; i < 9; ++i) elems.push_back(Scalar::from_be_bytes_reduce(rng.bytes(32)));
    std::vector<Scalar> expect;
    for (const Scalar& s : elems) expect.push_back(s.inverse());
    scalar_batch_inverse(elems.data(), elems.size());
    for (std::size_t i = 0; i < elems.size(); ++i) EXPECT_EQ(elems[i], expect[i]) << i;
}

TEST(QTable, DoubleMulMatchesGeneric) {
    Rng rng(406);
    AffinePoint q = generator_mul(Scalar::from_be_bytes_reduce(rng.bytes(32)));
    QTable table(q);
    for (int i = 0; i < 8; ++i) {
        Scalar u1 = Scalar::from_be_bytes_reduce(rng.bytes(32));
        Scalar u2 = Scalar::from_be_bytes_reduce(rng.bytes(32));
        EXPECT_EQ(table.double_mul(u1, u2), double_mul(u1, q, u2)) << i;
    }
    // Small / degenerate scalars exercise the wNAF edge cases.
    EXPECT_EQ(table.double_mul(Scalar(), Scalar::one()), q);
    EXPECT_EQ(table.double_mul(Scalar::one(), Scalar()), AffinePoint::generator());
    EXPECT_TRUE(table.double_mul(Scalar(), Scalar()).infinity);
}

TEST(QTable, CheckRMatchesAffineComparison) {
    Rng rng(407);
    AffinePoint q = generator_mul(Scalar::from_be_bytes_reduce(rng.bytes(32)));
    QTable table(q);
    for (int i = 0; i < 8; ++i) {
        Scalar u1 = Scalar::from_be_bytes_reduce(rng.bytes(32));
        Scalar u2 = Scalar::from_be_bytes_reduce(rng.bytes(32));
        AffinePoint p = double_mul(u1, q, u2);
        ASSERT_FALSE(p.infinity);
        Digest32 px = p.x.to_be_bytes();
        Scalar r = Scalar::from_be_bytes_reduce(BytesView(px.data(), px.size()));
        EXPECT_TRUE(table.double_mul_check_r(u1, u2, r)) << i;
        EXPECT_FALSE(table.double_mul_check_r(u1, u2, r.add(Scalar::one()))) << i;
    }
}

}  // namespace
}  // namespace neo::crypto
