#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/sha256_compress.hpp"

namespace neo::crypto {
namespace {

std::string hex_of(const Digest32& d) { return to_hex(BytesView(d.data(), d.size())); }

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256, EmptyString) {
    EXPECT_EQ(hex_of(sha256("")),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(hex_of(sha256("abc")),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(hex_of(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
    Sha256 ctx;
    Bytes chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) ctx.update(chunk);
    EXPECT_EQ(hex_of(ctx.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
    std::string msg = "the quick brown fox jumps over the lazy dog, repeatedly and at length";
    Digest32 oneshot = sha256(msg);
    for (std::size_t split = 0; split <= msg.size(); split += 7) {
        Sha256 ctx;
        ctx.update(std::string_view(msg).substr(0, split));
        ctx.update(std::string_view(msg).substr(split));
        EXPECT_EQ(ctx.finish(), oneshot) << "split at " << split;
    }
}

TEST(Sha256, ByteAtATimeMatchesOneShot) {
    Bytes msg;
    for (int i = 0; i < 200; ++i) msg.push_back(static_cast<std::uint8_t>(i * 7));
    Sha256 ctx;
    for (auto b : msg) ctx.update(BytesView(&b, 1));
    EXPECT_EQ(ctx.finish(), sha256(msg));
}

// Messages straddling the 55/56/64-byte padding boundaries.
TEST(Sha256, PaddingBoundaries) {
    for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
        Bytes msg(len, 0x61);
        Digest32 a = sha256(msg);
        Sha256 ctx;
        ctx.update(BytesView(msg.data(), len / 2));
        ctx.update(BytesView(msg.data() + len / 2, len - len / 2));
        EXPECT_EQ(ctx.finish(), a) << "len " << len;
    }
}

TEST(Sha256, ResetAllowsReuse) {
    Sha256 ctx;
    ctx.update("garbage");
    (void)ctx.finish();
    ctx.reset();
    ctx.update("abc");
    EXPECT_EQ(hex_of(ctx.finish()),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, PairMatchesConcatenation) {
    Bytes a = to_bytes("hello ");
    Bytes b = to_bytes("world");
    EXPECT_EQ(sha256_pair(a, b), sha256("hello world"));
}

TEST(Sha256, DistinctInputsDistinctDigests) {
    EXPECT_NE(sha256("a"), sha256("b"));
    EXPECT_NE(sha256(""), sha256(Bytes{0}));
}

// The scalar and SHA-NI compression backends must be bit-identical on
// arbitrary state/block pairs — the dispatch choice is host-local and can
// never leak into simulated results. (On hosts without SHA-NI only the
// resolved-dispatch half of the check is meaningful.)
TEST(Sha256, CompressionBackendsAgree) {
    Rng rng(0x5ad256);
    for (int trial = 0; trial < 256; ++trial) {
        std::uint32_t state_a[8], state_b[8];
        std::uint8_t block[64];
        for (auto& s : state_a) s = static_cast<std::uint32_t>(rng.next());
        std::memcpy(state_b, state_a, sizeof(state_a));
        Bytes blk = rng.bytes(64);
        std::memcpy(block, blk.data(), 64);

        detail::sha256_compress_scalar(state_a, block);
        detail::sha256_compress_fn()(state_b, block);
        EXPECT_EQ(0, std::memcmp(state_a, state_b, sizeof(state_a))) << "trial " << trial;

        if (detail::sha256_shani_available()) {
            std::uint32_t state_c[8];
            std::memcpy(state_c, state_b, sizeof(state_c));
            // state_b already went through one compress; run both backends
            // again from that state to cover chained blocks too.
            detail::sha256_compress_shani(state_c, block);
            detail::sha256_compress_scalar(state_b, block);
            EXPECT_EQ(0, std::memcmp(state_b, state_c, sizeof(state_b))) << "trial " << trial;
        }
    }
}

}  // namespace
}  // namespace neo::crypto
