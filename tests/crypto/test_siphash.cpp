#include "crypto/siphash.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/hex.hpp"
#include "crypto/tuning.hpp"

namespace neo::crypto {
namespace {

// Reference test vectors from the SipHash reference implementation
// (Aumasson & Bernstein): key = 000102...0f, message = first N bytes of
// 00 01 02 ... ; expected 64-bit outputs (little-endian in the reference
// table, given here as integers).
TEST(SipHash, ReferenceVectors) {
    SipKey key;
    {
        Bytes kb(16);
        for (int i = 0; i < 16; ++i) kb[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
        key = SipKey::from_bytes(kb);
    }
    const std::uint64_t expected[] = {
        0x726fdb47dd0e0e31ull,  // N=0
        0x74f839c593dc67fdull,  // N=1
        0x0d6c8009d9a94f5aull,  // N=2
        0x85676696d7fb7e2dull,  // N=3
        0xcf2794e0277187b7ull,  // N=4
        0x18765564cd99a68dull,  // N=5
        0xcbc9466e58fee3ceull,  // N=6
        0xab0200f58b01d137ull,  // N=7
        0x93f5f5799a932462ull,  // N=8
    };
    Bytes msg;
    for (std::size_t n = 0; n < std::size(expected); ++n) {
        EXPECT_EQ(siphash24(key, msg), expected[n]) << "message length " << n;
        msg.push_back(static_cast<std::uint8_t>(n));
    }
}

TEST(SipHash, KeySensitivity) {
    Bytes msg = to_bytes("authenticated ordered multicast");
    SipKey k1{1, 2}, k2{1, 3};
    EXPECT_NE(siphash24(k1, msg), siphash24(k2, msg));
}

TEST(SipHash, MessageSensitivity) {
    SipKey k{0xdead, 0xbeef};
    EXPECT_NE(siphash24(k, to_bytes("a")), siphash24(k, to_bytes("b")));
    EXPECT_NE(siphash24(k, to_bytes("")), siphash24(k, Bytes{0}));
}

TEST(SipHash, AllBlockBoundaryLengths) {
    SipKey k{42, 43};
    std::set<std::uint64_t> outputs;
    Bytes msg;
    for (int n = 0; n <= 32; ++n) {
        outputs.insert(siphash24(k, msg));
        msg.push_back(static_cast<std::uint8_t>(n * 3));
    }
    // All 33 prefixes must hash differently (collision would be astonishing).
    EXPECT_EQ(outputs.size(), 33u);
}

TEST(SipHash, KeyRoundTrip) {
    SipKey k{0x0123456789abcdefull, 0xfedcba9876543210ull};
    SipKey k2 = SipKey::from_bytes(k.to_bytes());
    EXPECT_EQ(k.k0, k2.k0);
    EXPECT_EQ(k.k1, k2.k1);
}

TEST(HalfSipHash, Deterministic) {
    HalfSipKey k{0x03020100u, 0x07060504u};
    Bytes msg = to_bytes("aom packet digest||seq");
    EXPECT_EQ(halfsiphash24(k, msg), halfsiphash24(k, msg));
}

TEST(HalfSipHash, KeySensitivity) {
    Bytes msg = to_bytes("payload");
    EXPECT_NE(halfsiphash24(HalfSipKey{1, 2}, msg), halfsiphash24(HalfSipKey{1, 3}, msg));
    EXPECT_NE(halfsiphash24(HalfSipKey{1, 2}, msg), halfsiphash24(HalfSipKey{2, 2}, msg));
}

TEST(HalfSipHash, MessageSensitivity) {
    HalfSipKey k{7, 9};
    std::set<std::uint32_t> outputs;
    Bytes msg;
    for (int n = 0; n <= 64; ++n) {
        outputs.insert(halfsiphash24(k, msg));
        msg.push_back(static_cast<std::uint8_t>(n));
    }
    EXPECT_EQ(outputs.size(), 65u);
}

TEST(HalfSipHash, WideOutputLowBitsDifferFromNarrow) {
    // The 64-bit variant uses different finalisation constants, so its low
    // word is NOT the 32-bit output (per the reference design).
    HalfSipKey k{11, 13};
    Bytes msg = to_bytes("x");
    std::uint64_t wide = halfsiphash24_64(k, msg);
    std::uint32_t narrow = halfsiphash24(k, msg);
    EXPECT_NE(static_cast<std::uint32_t>(wide), narrow);
}

TEST(HalfSipHash, WideDeterministicAndKeyed) {
    HalfSipKey k1{5, 6}, k2{5, 7};
    Bytes msg = to_bytes("hash chain");
    EXPECT_EQ(halfsiphash24_64(k1, msg), halfsiphash24_64(k1, msg));
    EXPECT_NE(halfsiphash24_64(k1, msg), halfsiphash24_64(k2, msg));
}

TEST(HalfSipHash, KeyRoundTrip) {
    HalfSipKey k{0x12345678u, 0x9abcdef0u};
    HalfSipKey k2 = HalfSipKey::from_bytes(k.to_bytes());
    EXPECT_EQ(k.k0, k2.k0);
    EXPECT_EQ(k.k1, k2.k1);
}

// Cross-check SipHash against an independently coded compression loop to
// guard against transcription slips in the main implementation.
namespace alt {
std::uint64_t rotl(std::uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }
std::uint64_t siphash_alt(const SipKey& key, BytesView data) {
    std::uint64_t v[4] = {key.k0 ^ 0x736f6d6570736575ull, key.k1 ^ 0x646f72616e646f6dull,
                          key.k0 ^ 0x6c7967656e657261ull, key.k1 ^ 0x7465646279746573ull};
    auto round = [&] {
        v[0] += v[1]; v[1] = rotl(v[1], 13); v[1] ^= v[0]; v[0] = rotl(v[0], 32);
        v[2] += v[3]; v[3] = rotl(v[3], 16); v[3] ^= v[2];
        v[0] += v[3]; v[3] = rotl(v[3], 21); v[3] ^= v[0];
        v[2] += v[1]; v[1] = rotl(v[1], 17); v[1] ^= v[2]; v[2] = rotl(v[2], 32);
    };
    std::size_t i = 0;
    std::uint64_t m = 0;
    int shift = 0;
    std::size_t full = data.size() / 8 * 8;
    for (; i < full; ++i) {
        m |= static_cast<std::uint64_t>(data[i]) << shift;
        shift += 8;
        if (shift == 64) {
            v[3] ^= m; round(); round(); v[0] ^= m;
            m = 0; shift = 0;
        }
    }
    for (; i < data.size(); ++i) {
        m |= static_cast<std::uint64_t>(data[i]) << shift;
        shift += 8;
    }
    m |= static_cast<std::uint64_t>(data.size() & 0xff) << 56;
    v[3] ^= m; round(); round(); v[0] ^= m;
    v[2] ^= 0xff;
    round(); round(); round(); round();
    return v[0] ^ v[1] ^ v[2] ^ v[3];
}
}  // namespace alt

TEST(SipHash, CrossImplementationSweep) {
    SipKey k{0x1122334455667788ull, 0x99aabbccddeeff00ull};
    Bytes msg;
    for (int n = 0; n < 100; ++n) {
        EXPECT_EQ(siphash24(k, msg), alt::siphash_alt(k, msg)) << "len " << n;
        msg.push_back(static_cast<std::uint8_t>(n * 13 + 1));
    }
}

TEST(HalfSipHashX4, MatchesScalarLanesOnEveryLength) {
    // The 4-lane kernel (SIMD when available, dispatched at runtime) must
    // be bit-identical to four scalar calls for every message length and
    // distinct per-lane keys.
    HalfSipKey keys[4] = {{0x03020100u, 0x07060504u},
                         {0xdeadbeefu, 0xcafef00du},
                         {0u, 0u},
                         {0xffffffffu, 0x80000001u}};
    Bytes msg;
    for (int n = 0; n < 70; ++n) {
        std::uint32_t out[4];
        halfsiphash24_x4(keys, msg, out);
        for (int lane = 0; lane < 4; ++lane) {
            EXPECT_EQ(out[lane], halfsiphash24(keys[lane], msg)) << "len " << n << " lane " << lane;
        }
        msg.push_back(static_cast<std::uint8_t>(n * 7 + 3));
    }
}

TEST(HalfSipHashX4, SimdAndScalarDispatchAgree) {
    HalfSipKey keys[4] = {{1u, 2u}, {3u, 4u}, {5u, 6u}, {7u, 8u}};
    Bytes msg = to_bytes("aom auth input: group epoch seq digest.........");
    crypto::HostCryptoTuning& tuning = host_crypto_tuning();
    bool prev = tuning.simd_siphash.exchange(true);
    std::uint32_t with_simd[4];
    halfsiphash24_x4(keys, msg, with_simd);
    tuning.simd_siphash.store(false);
    std::uint32_t scalar[4];
    halfsiphash24_x4(keys, msg, scalar);
    tuning.simd_siphash.store(prev);
    for (int lane = 0; lane < 4; ++lane) EXPECT_EQ(with_simd[lane], scalar[lane]) << lane;
}

}  // namespace
}  // namespace neo::crypto
