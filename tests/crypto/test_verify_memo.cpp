// The verified-signature memo: skips repeat EC math on the host while the
// virtual-time cost model stays oblivious — a memo hit and a memo miss
// charge the node's CostMeter identically, so simulated results cannot
// depend on cache state.
#include <gtest/gtest.h>

#include "crypto/identity.hpp"
#include "crypto/verify_memo.hpp"

using namespace neo;
using namespace neo::crypto;

namespace {

Bytes msg_bytes(const char* s) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(s);
    return Bytes(p, p + std::char_traits<char>::length(s));
}

TEST(VerifyMemo, RepeatVerificationHitsAndAgrees) {
    TrustRoot root(CryptoMode::kReal, /*seed=*/11);
    auto signer = root.provision(1);
    auto checker = root.provision(2);

    Bytes msg = msg_bytes("memoised message");
    Bytes sig = signer->sign(msg);

    EXPECT_TRUE(checker->verify(1, msg, sig));
    std::uint64_t hits_after_first = checker->verify_memo().hits();
    EXPECT_TRUE(checker->verify(1, msg, sig));
    EXPECT_TRUE(checker->verify(1, msg, sig));
    EXPECT_EQ(checker->verify_memo().hits(), hits_after_first + 2);
}

TEST(VerifyMemo, HitChargesFullVirtualCost) {
    TrustRoot root(CryptoMode::kReal, /*seed=*/12);
    auto signer = root.provision(1);
    auto checker = root.provision(2);
    CostMeter& meter = checker->meter();

    Bytes msg = msg_bytes("cost model is host-blind");
    Bytes sig = signer->sign(msg);

    ASSERT_TRUE(checker->verify(1, msg, sig));  // miss: real EC math
    std::int64_t miss_sync = meter.drain();
    std::int64_t miss_async = meter.drain_async();

    ASSERT_TRUE(checker->verify(1, msg, sig));  // hit: memo only
    std::int64_t hit_sync = meter.drain();
    std::int64_t hit_async = meter.drain_async();

    EXPECT_GT(checker->verify_memo().hits(), 0u);
    EXPECT_EQ(hit_sync, miss_sync);
    EXPECT_EQ(hit_async, miss_async);
    EXPECT_EQ(hit_sync, root.costs().ecdsa_dispatch_ns);
    EXPECT_EQ(hit_async, root.costs().ecdsa_verify_ns);
    EXPECT_EQ(meter.verifies, 2u);  // op counters tick on hits too
}

TEST(VerifyMemo, InvalidSignaturesAreMemoisedAsInvalid) {
    TrustRoot root(CryptoMode::kReal, /*seed=*/13);
    auto signer = root.provision(1);
    auto checker = root.provision(2);

    Bytes msg = msg_bytes("tampered");
    Bytes sig = signer->sign(msg);
    sig[10] ^= 0x01;

    EXPECT_FALSE(checker->verify(1, msg, sig));
    std::uint64_t hits_after_first = checker->verify_memo().hits();
    EXPECT_FALSE(checker->verify(1, msg, sig));  // hit, still invalid
    EXPECT_EQ(checker->verify_memo().hits(), hits_after_first + 1);
}

TEST(VerifyMemo, KeyCoversSignerDigestAndSignature) {
    TrustRoot root(CryptoMode::kReal, /*seed=*/14);
    auto node1 = root.provision(1);
    auto node2 = root.provision(2);
    auto checker = root.provision(3);

    Bytes msg = msg_bytes("same message");
    Bytes sig1 = node1->sign(msg);

    ASSERT_TRUE(checker->verify(1, msg, sig1));
    // Same (digest, sig) attributed to a different signer must NOT hit the
    // node-1 entry: it re-verifies against node 2's key and fails.
    EXPECT_FALSE(checker->verify(2, msg, sig1));
    // A different message under the same signer is its own entry.
    Bytes other = msg_bytes("different message");
    EXPECT_FALSE(checker->verify(1, other, sig1));
}

TEST(VerifyMemo, CollisionEvictionStaysCorrect) {
    // A tiny table forces constant evictions; every verdict must still be
    // correct (full-key compare on hit, re-verify on miss).
    VerifyMemo memo(/*slots=*/2);
    Digest32 d{};
    Bytes sig(VerifyMemo::kSigBytes, 0);
    for (std::uint32_t signer = 0; signer < 64; ++signer) {
        d[0] = static_cast<std::uint8_t>(signer);
        EXPECT_EQ(memo.find(signer, d, sig), nullptr);
        memo.insert(signer, d, sig, signer % 2 == 0);
    }
    // Whatever survived must report the verdict it was stored with.
    for (std::uint32_t signer = 0; signer < 64; ++signer) {
        d[0] = static_cast<std::uint8_t>(signer);
        const bool* v = memo.find(signer, d, sig);
        if (v != nullptr) EXPECT_EQ(*v, signer % 2 == 0);
    }
}

TEST(VerifyMemo, ModeledModeBypassesTheMemo) {
    TrustRoot root(CryptoMode::kModeled, /*seed=*/15);
    auto signer = root.provision(1);
    auto checker = root.provision(2);
    Bytes msg = msg_bytes("modeled tags are cheap already");
    Bytes sig = signer->sign(msg);
    EXPECT_TRUE(checker->verify(1, msg, sig));
    EXPECT_TRUE(checker->verify(1, msg, sig));
    EXPECT_EQ(checker->verify_memo().hits() + checker->verify_memo().misses(), 0u);
}

}  // namespace
