// The Auditor catching a real forged commit, end to end.
//
// A Byzantine network rewrites one sequencer packet on its way to a single
// replica: the attacker swaps in an earlier client's (validly signed)
// request and recomputes the HalfSipHash MAC vector with the switch keys.
// Under Neo-HM's crash-only network-trust assumption the receiver accepts
// the packet — the MAC scheme authenticates the switch, not the path — so
// the victim replica executes a different request than its peers at the
// same slot. The deployment's always-on obs::Auditor must flag this as a
// divergent commit. run_closed_loop() would abort the process on the
// violation by design, so this test drives the simulation directly and
// finalizes the auditor by hand.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "aom/keys.hpp"
#include "aom/types.hpp"
#include "aom/wire.hpp"
#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "crypto/siphash.hpp"
#include "harness/harness.hpp"
#include "sim/network.hpp"

namespace neo::bench {
namespace {

constexpr std::uint64_t kSeed = 1234;
constexpr int kRequestsPerClient = 8;  // well under sync_interval (128 slots)

std::unique_ptr<Deployment> build() {
    NeoParams p;
    p.variant = NeoVariant::kHm;
    p.n_replicas = 4;
    p.n_clients = 2;
    p.seed = kSeed;
    return make_neobft(p);
}

/// Issues a short closed-loop workload and runs the sim to quiescence.
void drive(Deployment& d) {
    OpGen gen = echo_ops(64);
    auto issue = std::make_shared<std::function<void(int, std::uint64_t)>>();
    *issue = [&d, issue, gen](int client, std::uint64_t k) {
        if (k >= kRequestsPerClient) return;
        d.invoke(client, gen(client, k),
                 [issue, client, k](Bytes) { (*issue)(client, k + 1); });
    };
    for (int c = 0; c < d.n_clients(); ++c) (*issue)(c, 0);
    d.simulator().run_until(10 * sim::kMillisecond);
}

TEST(AuditorForgery, CleanRunPassesTheAuditor) {
    std::unique_ptr<Deployment> d = build();
    drive(*d);
    obs::Auditor& aud = d->auditor();
    aud.finalize();
    EXPECT_TRUE(aud.ok()) << (aud.violations().empty()
                                  ? ""
                                  : aud.violations()[0].to_string());
}

TEST(AuditorForgery, ForgedHmPacketYieldsDivergentCommit) {
    std::unique_ptr<Deployment> d = build();
    const std::vector<NodeId> replicas = d->replica_ids();
    ASSERT_EQ(replicas.size(), 4u);
    const NodeId victim = replicas[0];

    // The attacker knows the switch's per-receiver keys (Neo-HM only claims
    // safety against a crash-faulty network). NeoDeployment provisions its
    // key service from seed + 2.
    aom::AomKeyService keys(kSeed + 2);

    bool forged = false;
    std::optional<aom::HmPacket> stash;
    d->network().set_tamper([&](NodeId from, NodeId to, Bytes& data) {
        if (forged || data.empty() ||
            data[0] != static_cast<std::uint8_t>(aom::Wire::kSeqHm)) {
            return sim::TamperAction::kDeliver;
        }
        aom::HmPacket pkt;
        try {
            Reader r(BytesView(data).subspan(1));
            pkt = aom::HmPacket::parse(r);
        } catch (...) {
            return sim::TamperAction::kDeliver;
        }
        if (!stash) {
            stash = pkt;  // first sequenced request: the substitute payload
            return sim::TamperAction::kDeliver;
        }
        if (to != victim || pkt.seq <= stash->seq || pkt.digest == stash->digest) {
            return sim::TamperAction::kDeliver;
        }
        // Splice the stashed request under the current sequence number and
        // re-authenticate every subgroup slot with the real switch keys.
        pkt.digest = stash->digest;
        pkt.payload = stash->payload;
        Bytes input = aom::auth_input(pkt.group, pkt.epoch, pkt.seq, pkt.digest);
        std::size_t base = static_cast<std::size_t>(pkt.subgroup) *
                           static_cast<std::size_t>(aom::kHmSubgroupSize);
        EXPECT_LE(base + pkt.macs.size(), replicas.size());
        for (std::size_t i = 0; i < pkt.macs.size(); ++i) {
            pkt.macs[i] =
                crypto::halfsiphash24(keys.hm_key(from, replicas[base + i]), input);
        }
        data = pkt.serialize();
        forged = true;
        return sim::TamperAction::kDeliver;
    });

    drive(*d);
    ASSERT_TRUE(forged) << "workload never produced a second distinct request";

    obs::Auditor& aud = d->auditor();
    aud.finalize();
    EXPECT_FALSE(aud.ok());
    bool divergent = false;
    for (const auto& v : aud.violations()) {
        if (std::string_view(v.invariant) == "divergent_commit") divergent = true;
    }
    EXPECT_TRUE(divergent) << "auditor missed the forged commit ("
                           << aud.violations().size() << " other violations)";
}

}  // namespace
}  // namespace neo::bench
