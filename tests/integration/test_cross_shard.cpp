// Cross-shard two-phase commit, end to end: honest multi-shard runs commit
// atomically and pass the auditor (including under packet loss and a
// sequencer failover), and a Byzantine participant shard that equivocates
// on its prepare vote — claims PREPARED on the wire, stages nothing — is
// flagged by obs::Auditor as a divergent transaction decision.
//
// tsan label: 2PC fans prepare/commit ops out across shards placed on
// different PDES partitions, with the per-client coordinator state mutated
// from co-located child-client events — the heaviest cross-partition
// shared-state pattern the sharded stack has.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "harness/harness.hpp"

namespace neo::bench {
namespace {

constexpr std::uint64_t kSeed = 4242;
constexpr int kTxnsPerClient = 8;

ShardParams params(int shards, unsigned sim_threads = 1) {
    ShardParams p;
    p.n_shards = shards;
    p.n_replicas = 4;
    p.n_clients = 2;
    p.seed = kSeed;
    p.sim_threads = sim_threads;
    p.dataset.record_count = 1'000;  // small preload keeps the test fast
    return p;
}

ShardTxnWorkload workload(int shards, double cross_ratio) {
    ShardTxnWorkload w;
    w.n_shards = shards;
    w.cross_shard_ratio = cross_ratio;
    w.ops_per_txn = 3;
    w.seed = kSeed;
    w.dataset.record_count = 1'000;
    return w;
}

/// Issues kTxnsPerClient transactions per client and runs to quiescence
/// (run_closed_loop would abort on an auditor violation, and the Byzantine
/// scenarios exist to *observe* violations — so drive the sim directly).
void drive(Deployment& d, const OpGen& gen) {
    auto issue = std::make_shared<std::function<void(int, std::uint64_t)>>();
    *issue = [&d, issue, &gen](int client, std::uint64_t k) {
        if (k >= kTxnsPerClient) return;
        d.invoke(client, gen(client, k),
                 [issue, client, k](Bytes) { (*issue)(client, k + 1); });
    };
    for (int c = 0; c < d.n_clients(); ++c) (*issue)(c, 0);
    d.simulator().run_until(100 * sim::kMillisecond);
}

bool has_violation(const obs::Auditor& aud, std::string_view invariant) {
    for (const auto& v : aud.violations()) {
        if (std::string_view(v.invariant) == invariant) return true;
    }
    return false;
}

TEST(CrossShard, SingleShardFastPathCommitsWithout2pc) {
    auto d = make_sharded_neobft(params(1));
    OpGen gen = sharded_txn_ops(workload(1, 0.0), d->n_clients());
    drive(*d, gen);

    obs::Auditor& aud = d->auditor();
    aud.finalize();
    EXPECT_TRUE(aud.ok()) << (aud.violations().empty() ? ""
                                                       : aud.violations()[0].to_string());

    Deployment::TxnTotals t = d->txn_totals();
    EXPECT_EQ(t.txns_started, static_cast<std::uint64_t>(2 * kTxnsPerClient));
    EXPECT_EQ(t.cross_shard_txns, 0u);
    EXPECT_GT(t.committed_txns, 0u);
    EXPECT_EQ(t.committed_txns + t.aborted_txns, t.txns_started);
}

TEST(CrossShard, CrossShardTxnsCommitAtomicallyAndPassTheAuditor) {
    auto d = make_sharded_neobft(params(4));
    OpGen gen = sharded_txn_ops(workload(4, 1.0), d->n_clients());
    drive(*d, gen);

    obs::Auditor& aud = d->auditor();
    aud.finalize();
    EXPECT_TRUE(aud.ok()) << (aud.violations().empty() ? ""
                                                       : aud.violations()[0].to_string());

    Deployment::TxnTotals t = d->txn_totals();
    EXPECT_EQ(t.txns_started, static_cast<std::uint64_t>(2 * kTxnsPerClient));
    EXPECT_GT(t.cross_shard_txns, 0u);
    EXPECT_GT(t.committed_txns, 0u);
    EXPECT_GT(t.committed_ops, 0u);
    EXPECT_EQ(t.committed_txns + t.aborted_txns, t.txns_started);
}

TEST(CrossShard, HonestRunSurvivesDropsAndFailover) {
    // run_closed_loop finalizes the auditor and aborts the process on any
    // safety violation — surviving the call IS the assertion. Packet loss
    // exercises the 2PC retry paths; stalling shard 0's home switch
    // mid-run forces a sequencer failover under live transactions.
    ShardParams p = params(2);
    p.n_clients = 4;
    p.drop_rate = 0.01;
    auto d = make_sharded_neobft(p);
    OpGen gen = sharded_txn_ops(workload(2, 0.2), d->n_clients());

    d->simulator().at(5 * sim::kMillisecond, [&] { d->inject_sequencer_failure(); });
    Measured m = run_closed_loop(*d, gen, 2 * sim::kMillisecond, 150 * sim::kMillisecond);

    EXPECT_GT(m.completed, 0u);
    EXPECT_GE(d->failovers(), 1u);
    Deployment::TxnTotals t = d->txn_totals();
    EXPECT_GT(t.committed_txns, 0u);
    EXPECT_GT(t.cross_shard_txns, 0u);
}

TEST(CrossShard, ByzantineEquivocatingShardIsFlagged) {
    // Shard 1's replicas run the forged-prepare double: the coordinator
    // sees PREPARED everywhere and commits, the honest shards apply, the
    // Byzantine shard finds nothing staged — a cross-shard atomicity
    // violation the auditor must surface as txn_divergent_decision.
    ShardParams p = params(2);
    p.byzantine_prepare_shard = 1;
    auto d = make_sharded_neobft(p);
    OpGen gen = sharded_txn_ops(workload(2, 1.0), d->n_clients());
    drive(*d, gen);

    Deployment::TxnTotals t = d->txn_totals();
    ASSERT_GT(t.cross_shard_txns, 0u);
    ASSERT_GT(t.committed_txns, 0u) << "the forged votes never led to a commit";

    obs::Auditor& aud = d->auditor();
    aud.finalize();
    EXPECT_FALSE(aud.ok());
    EXPECT_TRUE(has_violation(aud, "txn_divergent_decision"))
        << "auditor missed the equivocating shard (" << aud.violations().size()
        << " other violations)";
}

TEST(CrossShard, HonestRunsFlagNothingAcrossThreadCounts) {
    // The auditor merges per-partition record buffers; the multi-threaded
    // engine must neither lose txn records nor order them differently.
    for (unsigned threads : {1u, 2u, 8u}) {
        auto d = make_sharded_neobft(params(4, threads));
        OpGen gen = sharded_txn_ops(workload(4, 0.5), d->n_clients());
        drive(*d, gen);
        obs::Auditor& aud = d->auditor();
        aud.finalize();
        EXPECT_TRUE(aud.ok()) << "threads=" << threads << ": "
                              << (aud.violations().empty()
                                      ? ""
                                      : aud.violations()[0].to_string());
    }
}

}  // namespace
}  // namespace neo::bench
