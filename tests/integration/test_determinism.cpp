// Whole-system determinism: a seed fixes every run bit-for-bit; different
// seeds explore different schedules but preserve safety.
#include <gtest/gtest.h>

#include "../neobft/neobft_test_util.hpp"

namespace neo::neobft {
namespace {

using testutil::DeploymentOptions;
using testutil::NeoDeployment;

struct RunFingerprint {
    std::vector<Digest32> final_hashes;
    std::vector<std::uint64_t> log_sizes;
    std::vector<std::vector<std::string>> results;
    std::uint64_t packets;

    friend bool operator==(const RunFingerprint&, const RunFingerprint&) = default;
};

RunFingerprint run_once(std::uint64_t seed, double drop_rate) {
    DeploymentOptions opts;
    opts.seed = seed;
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    opts.client.retry_timeout = 5 * sim::kMillisecond;
    NeoDeployment d(opts);
    d.net.set_global_drop_rate(drop_rate);
    RunFingerprint fp;
    fp.results = d.run_workload(3, 12, 30 * sim::kSecond);
    for (auto& rep : d.replicas) {
        fp.log_sizes.push_back(rep->log().size());
        fp.final_hashes.push_back(rep->log().hash_at(rep->log().size()));
    }
    fp.packets = d.net.packets_sent();
    return fp;
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
    RunFingerprint a = run_once(77, 0.0);
    RunFingerprint b = run_once(77, 0.0);
    EXPECT_EQ(a, b);
}

TEST(Determinism, IdenticalSeedsIdenticalRunsUnderLoss) {
    RunFingerprint a = run_once(101, 0.03);
    RunFingerprint b = run_once(101, 0.03);
    EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDifferentSchedules) {
    RunFingerprint a = run_once(1, 0.03);
    RunFingerprint b = run_once(2, 0.03);
    // Different loss patterns -> different packet counts (with overwhelming
    // probability), but both runs complete the same workload.
    EXPECT_NE(a.packets, b.packets);
    EXPECT_EQ(a.results.size(), b.results.size());
    for (std::size_t c = 0; c < a.results.size(); ++c) {
        EXPECT_EQ(a.results[c], b.results[c]);  // same ops committed, same order per client
    }
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, SafetyHoldsAcrossSchedules) {
    DeploymentOptions opts;
    opts.seed = GetParam();
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    opts.client.retry_timeout = 5 * sim::kMillisecond;
    NeoDeployment d(opts);
    d.net.set_global_drop_rate(0.05);
    auto results = d.run_workload(3, 10, 60 * sim::kSecond);
    for (const auto& r : results) EXPECT_EQ(r.size(), 10u);
    d.expect_prefix_consistent();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u));

}  // namespace
}  // namespace neo::neobft
