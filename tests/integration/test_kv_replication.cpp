// Full-stack integration: NeoBFT replicating the B-Tree key-value store
// under a YCSB-style workload, including speculative rollback of KV state.
#include <gtest/gtest.h>

#include "../neobft/neobft_test_util.hpp"
#include "apps/kvstore.hpp"
#include "apps/ycsb.hpp"

namespace neo::neobft {
namespace {

using testutil::DeploymentOptions;
using testutil::NeoDeployment;

DeploymentOptions kv_opts(const app::YcsbWorkload& workload) {
    DeploymentOptions opts;
    opts.protocol.sync_interval = 32;
    opts.app_factory = [&workload] {
        auto sm = std::make_unique<app::KvStateMachine>();
        workload.load_into(*sm);
        return sm;
    };
    return opts;
}

app::YcsbConfig small_dataset(std::uint64_t records = 100, std::size_t field = 16) {
    app::YcsbConfig cfg;
    cfg.record_count = records;
    cfg.field_length = field;
    return cfg;
}

void run_kv_stream(app::YcsbWorkload& workload, Client& client, int total,
                   std::vector<app::KvResult>& results) {
    auto issue = std::make_shared<std::function<void()>>();
    auto remaining = std::make_shared<int>(total);
    *issue = [&workload, &client, issue, remaining, &results]() {
        if ((*remaining)-- <= 0) return;
        app::KvOp op = workload.next_op();
        client.invoke(op.serialize(), [issue, &results](Bytes res) {
            auto parsed = app::KvResult::parse(res);
            ASSERT_TRUE(parsed.has_value());
            results.push_back(*parsed);
            (*issue)();
        });
    };
    (*issue)();
}

TEST(KvReplication, KvOpsCommitAndReplicasAgree) {
    app::YcsbWorkload workload(small_dataset(), 17);
    NeoDeployment d(kv_opts(workload));
    Client& client = d.add_client();

    app::YcsbWorkload opgen(small_dataset(), 23);
    std::vector<app::KvResult> results;
    run_kv_stream(opgen, client, 60, results);
    d.sim.run_until(10 * sim::kSecond);

    ASSERT_EQ(results.size(), 60u);
    for (const auto& r : results) EXPECT_EQ(r.status, app::KvStatus::kOk);

    // All replicas hold identical stores with valid B-Tree structure.
    auto& ref = dynamic_cast<app::KvStateMachine&>(d.replicas[0]->app());
    for (auto& rep : d.replicas) {
        auto& sm = dynamic_cast<app::KvStateMachine&>(rep->app());
        EXPECT_EQ(sm.store().size(), ref.store().size());
        EXPECT_TRUE(sm.store().check_invariants());
    }
    auto& other = dynamic_cast<app::KvStateMachine&>(d.replicas[3]->app());
    ref.store().for_each([&](const Bytes& key, const Bytes& value) {
        const Bytes* v = other.store().get(key);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, value);
    });
    d.expect_prefix_consistent();
}

TEST(KvReplication, ReadsObservePriorWrites) {
    app::YcsbWorkload workload(small_dataset(), 31);
    NeoDeployment d(kv_opts(workload));
    Client& client = d.add_client();

    app::KvOp put;
    put.type = app::KvOpType::kPut;
    put.key = to_bytes("balance");
    put.value = to_bytes("42");
    app::KvOp get;
    get.type = app::KvOpType::kGet;
    get.key = to_bytes("balance");

    std::vector<app::KvResult> results;
    client.invoke(put.serialize(), [&](Bytes res) {
        results.push_back(*app::KvResult::parse(res));
        client.invoke(get.serialize(), [&](Bytes res2) {
            results.push_back(*app::KvResult::parse(res2));
        });
    });
    d.sim.run_until(sim::kSecond);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, app::KvStatus::kOk);
    EXPECT_EQ(results[1].status, app::KvStatus::kOk);
    EXPECT_EQ(results[1].value, to_bytes("42"));
}

TEST(KvReplication, KvStateSurvivesRollback) {
    // Replica 2 speculatively executes a PUT that the rest commit as a
    // no-op: its B-Tree must be rolled back to match.
    app::YcsbWorkload workload(small_dataset(), 41);
    DeploymentOptions opts = kv_opts(workload);
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    NeoDeployment d(opts);

    bool drop_switch = true;
    d.net.set_tamper([&](NodeId from, NodeId to, Bytes& data) {
        if (drop_switch && from >= NeoDeployment::kSwitchBase &&
            (to == 1 || to == 3 || to == 4)) {
            return sim::TamperAction::kDrop;
        }
        if (from == 2 && !data.empty() &&
            (data[0] == static_cast<std::uint8_t>(MsgKind::kGapRecv) ||
             data[0] == static_cast<std::uint8_t>(MsgKind::kQueryReply))) {
            return sim::TamperAction::kDrop;
        }
        return sim::TamperAction::kDeliver;
    });

    Client& client = d.add_client();
    app::KvOp put;
    put.type = app::KvOpType::kPut;
    put.key = to_bytes("spec-key");
    put.value = to_bytes("spec-value");
    int done = 0;
    client.invoke(put.serialize(), [&](Bytes) { ++done; });

    d.sim.run_until(10 * sim::kMillisecond);
    drop_switch = false;
    d.sim.run_until(5 * sim::kSecond);

    EXPECT_EQ(done, 1);  // client retry eventually committed the op
    // Slot 1 is a no-op everywhere; the op landed in a later slot, so every
    // store agrees (and replica 2 performed a rollback in between).
    EXPECT_GE(d.replicas[1]->stats().rollbacks, 1u);
    auto& ref = dynamic_cast<app::KvStateMachine&>(d.replicas[0]->app());
    for (auto& rep : d.replicas) {
        auto& sm = dynamic_cast<app::KvStateMachine&>(rep->app());
        const Bytes* v = sm.store().get(to_bytes("spec-key"));
        ASSERT_NE(v, nullptr) << "replica " << rep->id();
        EXPECT_EQ(*v, to_bytes("spec-value"));
        EXPECT_EQ(sm.store().size(), ref.store().size());
    }
    d.expect_prefix_consistent();
}

TEST(KvReplication, FailoverPreservesKvState) {
    app::YcsbWorkload workload(small_dataset(), 51);
    DeploymentOptions opts = kv_opts(workload);
    opts.n_switches = 2;
    opts.protocol.view_change_timeout = 5 * sim::kMillisecond;
    opts.protocol.request_aom_timeout = 8 * sim::kMillisecond;
    opts.client.retry_timeout = 4 * sim::kMillisecond;
    NeoDeployment d(opts);
    Client& client = d.add_client();

    app::YcsbWorkload opgen(small_dataset(), 53);
    std::vector<app::KvResult> results;
    run_kv_stream(opgen, client, 20, results);
    d.sim.run_until(10 * sim::kSecond);
    ASSERT_EQ(results.size(), 20u);

    // Kill the sequencer mid-deployment; write through the new epoch.
    d.switches[0]->set_stall(true);
    app::KvOp put;
    put.type = app::KvOpType::kPut;
    put.key = to_bytes("post-failover");
    put.value = to_bytes("alive");
    bool done = false;
    client.invoke(put.serialize(), [&](Bytes) { done = true; });
    d.sim.run_until(d.sim.now() + 5 * sim::kSecond);

    EXPECT_TRUE(done);
    for (auto& rep : d.replicas) {
        EXPECT_EQ(rep->view().epoch, 2u);
        auto& sm = dynamic_cast<app::KvStateMachine&>(rep->app());
        const Bytes* v = sm.store().get(to_bytes("post-failover"));
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, to_bytes("alive"));
    }
    d.expect_prefix_consistent();
}

}  // namespace
}  // namespace neo::neobft
