// Randomized PDES stress: 200 generated scenarios sweeping every protocol
// family (NeoBFT HM/PK/BN, PBFT, Zyzzyva, HotStuff, MinBFT), topology
// sizes, packet drops, Byzantine tampering and sequencer failover — each
// scenario executed on the serial engine and with 2 and 8 partitions. The
// contract under test is the PDES tentpole: the trace byte stream and the
// full metrics snapshot (every protocol/network counter) must be identical
// for every thread count.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "harness/harness.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace neo::bench {
namespace {

struct Scenario {
    int proto;  // 0..2 neobft hm/pk/bn, 3 pbft, 4 zyzzyva, 5 hotstuff, 6 minbft
    int n_replicas;
    int n_clients;
    double drop_rate;
    bool tamper;    // Byzantine-network scenarios only
    bool failover;  // NeoBFT scenarios only
    std::uint64_t seed;
};

/// Scenario generator: a pure function of the index, so every thread-count
/// run rebuilds the exact same case and the sweep is reproducible from a
/// failing test name alone.
Scenario make_scenario(int index) {
    StreamRng rng(0x57e55, static_cast<std::uint64_t>(index));
    Scenario sc;
    sc.proto = static_cast<int>(rng.uniform(7));
    sc.n_replicas = sc.proto < 3 ? static_cast<int>(4 + 3 * rng.uniform(3))  // 4, 7, 10
                                 : static_cast<int>(4 + 3 * rng.uniform(2));
    sc.n_clients = static_cast<int>(2 + rng.uniform(3));
    const double rates[] = {0.0, 0.001, 0.01};
    sc.drop_rate = rates[rng.uniform(3)];
    sc.tamper = sc.proto == 2 && rng.chance(0.5);
    sc.failover = sc.proto < 3 && rng.chance(0.25);
    sc.seed = 7'000 + static_cast<std::uint64_t>(index);
    return sc;
}

std::unique_ptr<Deployment> build(const Scenario& sc, unsigned threads) {
    if (sc.proto < 3) {
        NeoParams p;
        p.n_replicas = sc.n_replicas;
        p.n_clients = sc.n_clients;
        p.seed = sc.seed;
        p.sim_threads = threads;
        p.drop_rate = sc.drop_rate;
        p.variant = sc.proto == 0   ? NeoVariant::kHm
                    : sc.proto == 1 ? NeoVariant::kPk
                                    : NeoVariant::kBn;
        if (sc.drop_rate > 0) p.receiver.gap_timeout = 200 * sim::kMicrosecond;
        return make_neobft(p);
    }
    CommonParams base;
    base.n_replicas = sc.n_replicas;
    base.n_clients = sc.n_clients;
    base.seed = sc.seed;
    base.sim_threads = threads;
    base.drop_rate = sc.drop_rate;
    switch (sc.proto) {
        case 3: return make_pbft(base);
        case 4: {
            ZyzzyvaParams p;
            static_cast<CommonParams&>(p) = base;
            return make_zyzzyva(p);
        }
        case 5: return make_hotstuff(base);
        default: return make_minbft(base);
    }
}

struct Outcome {
    std::string trace;
    std::string metrics;
    std::uint64_t completed = 0;

    friend bool operator==(const Outcome&, const Outcome&) = default;
};

Outcome run_scenario(const Scenario& sc, unsigned threads) {
    auto d = build(sc, threads);
    obs::TraceSink sink;
    d->simulator().set_trace(&sink);
    obs::Registry reg;
    d->register_obs(reg, "run", &sink);

    if (sc.tamper) {
        // Deterministic corruption of a sparse pseudo-random packet subset.
        d->network().set_tamper([](NodeId from, NodeId to, Bytes& data) {
            std::uint64_t h = (from * 31 + to) * 1099511628211ull + data.size();
            if (h % 97 == 0 && !data.empty()) data.back() ^= 0xa5;
            return sim::TamperAction::kDeliver;
        });
    }
    if (sc.failover) {
        // Mid-measurement sequencer kill, injected as a global event so it
        // lands between windows on every engine.
        d->simulator().at_global(2 * sim::kMillisecond,
                                 [dep = d.get()] { dep->inject_sequencer_failure(); });
    }

    Measured m = run_closed_loop(*d, echo_ops(64), 1 * sim::kMillisecond, 3 * sim::kMillisecond);

    Outcome out;
    out.completed = m.completed;
    std::ostringstream ts;
    sink.write_jsonl(ts);
    out.trace = ts.str();
    std::ostringstream ms;
    reg.write_json(ms);
    // Fold the driver's measurements in with the counters.
    for (const auto& [k, v] : measured_metrics(m)) ms << k << "=" << v << "\n";
    out.metrics = ms.str();
    return out;
}

class PdesStress : public ::testing::TestWithParam<int> {};

TEST_P(PdesStress, TraceAndMetricsIdenticalAcrossThreadCounts) {
    const Scenario sc = make_scenario(GetParam());
    Outcome serial = run_scenario(sc, 1);
    ASSERT_FALSE(serial.trace.empty());
    for (unsigned threads : {2u, 8u}) {
        Outcome parallel = run_scenario(sc, threads);
        EXPECT_EQ(serial.trace, parallel.trace)
            << "proto=" << sc.proto << " threads=" << threads;
        EXPECT_EQ(serial.metrics, parallel.metrics)
            << "proto=" << sc.proto << " threads=" << threads;
        EXPECT_EQ(serial.completed, parallel.completed);
    }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, PdesStress, ::testing::Range(0, 200));

}  // namespace
}  // namespace neo::bench
