// PDES placement is host-locality only: the simulator's event order is a
// pure function of (time, lane, seq), never of which partition executes an
// event, so ANY placement policy must produce byte-identical traces and
// metrics at every --sim-threads value. This test runs the same seeded
// deployment under a matrix of placement policies x thread counts and
// compares full JSONL traces byte-for-byte.
//
// tsan label: scrambled placements co-locate nodes that normally never
// share a partition worker, the sharpest cross-partition scheduling the
// placement layer can produce.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "obs/trace.hpp"

namespace neo::bench {
namespace {

constexpr std::uint64_t kSeed = 9090;

struct RunOut {
    std::string trace;
    std::uint64_t completed = 0;
    double p50_us = 0;
    double p99_us = 0;
    std::uint64_t packets = 0;
    std::uint64_t executed_events = 0;
    std::uint64_t committed_ops = 0;
};

/// Scrambled-but-safe placement for sharded deployments: keeps each node
/// block (a shard's replicas, one logical client's children) together —
/// the ShardClient's co-location contract — but maps blocks to partitions
/// through a multiplicative hash instead of the affine default.
unsigned scrambled_sharded(NodeId id, unsigned nparts) {
    NodeId block;
    if (id >= 1'000) {
        block = 101 + (id - 1'000) / 32;  // client c's children
    } else if (id >= 900) {
        block = 51 + (id - 900);  // config service + switches
    } else {
        block = (id - 1) / 8;  // shard s's replicas
    }
    return static_cast<unsigned>((block * 2'654'435'761ull + 12'345ull) % nparts);
}

/// Arbitrary per-node scramble (no co-location constraints in the plain
/// NeoBFT deployment).
unsigned scrambled_flat(NodeId id, unsigned nparts) {
    return static_cast<unsigned>((id * 2'654'435'761ull + 97ull) % nparts);
}

RunOut run_neo(unsigned sim_threads, sim::Simulator::PlacementFn placement) {
    NeoParams p;
    p.n_replicas = 4;
    p.n_clients = 8;
    p.seed = kSeed;
    p.sim_threads = sim_threads;
    p.placement = std::move(placement);
    auto d = make_neobft(p);

    obs::TraceSink sink;
    d->simulator().set_trace(&sink);
    Measured m = run_closed_loop(*d, echo_ops(64), 1 * sim::kMillisecond, 4 * sim::kMillisecond);
    d->simulator().set_trace(nullptr);

    RunOut out;
    std::ostringstream os;
    sink.write_jsonl(os);
    out.trace = os.str();
    out.completed = m.completed;
    out.p50_us = m.p50_us;
    out.p99_us = m.p99_us;
    out.packets = d->network().packets_delivered();
    out.executed_events = d->simulator().executed_events();
    return out;
}

RunOut run_sharded(unsigned sim_threads, sim::Simulator::PlacementFn placement) {
    ShardParams p;
    p.n_shards = 4;
    p.n_replicas = 4;
    p.n_clients = 4;
    p.seed = kSeed;
    p.sim_threads = sim_threads;
    p.placement = std::move(placement);
    p.dataset.record_count = 1'000;
    auto d = make_sharded_neobft(p);

    ShardTxnWorkload w;
    w.n_shards = 4;
    w.cross_shard_ratio = 0.25;
    w.seed = kSeed;
    w.dataset.record_count = 1'000;
    OpGen gen = sharded_txn_ops(w, d->n_clients());

    obs::TraceSink sink;
    d->simulator().set_trace(&sink);
    Measured m = run_closed_loop(*d, gen, 1 * sim::kMillisecond, 4 * sim::kMillisecond);
    d->simulator().set_trace(nullptr);

    RunOut out;
    std::ostringstream os;
    sink.write_jsonl(os);
    out.trace = os.str();
    out.completed = m.completed;
    out.p50_us = m.p50_us;
    out.p99_us = m.p99_us;
    out.packets = d->network().packets_delivered();
    out.executed_events = d->simulator().executed_events();
    out.committed_ops = d->txn_totals().committed_ops;
    return out;
}

void expect_same(const RunOut& ref, const RunOut& got, const std::string& what) {
    EXPECT_EQ(ref.completed, got.completed) << what;
    EXPECT_EQ(ref.p50_us, got.p50_us) << what;
    EXPECT_EQ(ref.p99_us, got.p99_us) << what;
    EXPECT_EQ(ref.packets, got.packets) << what;
    EXPECT_EQ(ref.executed_events, got.executed_events) << what;
    EXPECT_EQ(ref.committed_ops, got.committed_ops) << what;
    ASSERT_EQ(ref.trace.size(), got.trace.size()) << what << ": trace size diverged";
    EXPECT_TRUE(ref.trace == got.trace) << what << ": trace bytes diverged";
}

TEST(Placement, NeoByteIdenticalAcrossPlacementsAndThreads) {
    RunOut ref = run_neo(1, {});
    EXPECT_GT(ref.completed, 0u);
    EXPECT_FALSE(ref.trace.empty());
    for (unsigned threads : {1u, 2u, 8u}) {
        expect_same(ref, run_neo(threads, {}),
                    "default placement, threads=" + std::to_string(threads));
        expect_same(ref, run_neo(threads, scrambled_flat),
                    "scrambled placement, threads=" + std::to_string(threads));
    }
}

TEST(Placement, ShardedByteIdenticalAcrossPlacementsAndThreads) {
    RunOut ref = run_sharded(1, {});
    EXPECT_GT(ref.completed, 0u);
    EXPECT_GT(ref.committed_ops, 0u);
    for (unsigned threads : {1u, 2u, 8u}) {
        expect_same(ref, run_sharded(threads, {}),
                    "group-affine placement, threads=" + std::to_string(threads));
        expect_same(ref, run_sharded(threads, scrambled_sharded),
                    "scrambled placement, threads=" + std::to_string(threads));
    }
}

TEST(Placement, PolicyOnlyMovesHostWork) {
    // partition_of must reflect the installed policy (this is what the
    // engine consults when distributing nodes across workers).
    sim::Simulator s(4);
    s.set_placement([](NodeId id, unsigned nparts) { return (id + 3) % nparts; });
    s.bind_node(1);
    s.bind_node(9);
    EXPECT_EQ(s.partition_of(1), 4u % s.partitions());
    EXPECT_EQ(s.partition_of(9), 12u % s.partitions());
    // Unbound nodes fall back to the id % nparts default.
    EXPECT_EQ(s.partition_of(2), 2u % s.partitions());
}

}  // namespace
}  // namespace neo::bench
