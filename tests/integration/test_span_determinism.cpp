// Trace-merge ordering: span events recorded inside parallel PDES windows
// must merge into ONE byte-identical JSONL stream whatever the partition
// count. Each protocol runs the same seed under --sim-threads 1, 2 and 8
// with a spans-only sink attached; the serialized streams — and the
// derived phase_* critical-path metrics — are compared byte for byte.
// Runs under TSan in CI (LABEL tsan): the partition-local span buffers and
// their window-boundary merge are exactly the code a data race would hit.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "harness/harness.hpp"
#include "obs/trace.hpp"

namespace neo::bench {
namespace {

struct Stream {
    std::string jsonl;                    // spans-only TraceSink serialization
    std::map<std::string, double> phase;  // phase_* metrics derived from it
    std::uint64_t completed = 0;
};

std::unique_ptr<Deployment> build(const std::string& proto, unsigned sim_threads) {
    CommonParams base;
    base.n_replicas = 4;
    base.n_clients = 6;
    base.seed = 97;
    base.sim_threads = sim_threads;
    if (proto == "pbft") return make_pbft(base);
    if (proto == "hotstuff") return make_hotstuff(base);
    NeoParams p;
    static_cast<CommonParams&>(p) = base;
    p.variant = proto == "neo_pk" ? NeoVariant::kPk : NeoVariant::kHm;
    return make_neobft(p);
}

Stream run(const std::string& proto, unsigned sim_threads) {
    std::unique_ptr<Deployment> d = build(proto, sim_threads);
    obs::TraceSink sink;
    sink.set_kind_mask(obs::kSpanKindMask);
    d->simulator().set_trace(&sink);
    Measured m = run_closed_loop(*d, echo_ops(64), sim::kMillisecond,
                                 3 * sim::kMillisecond);
    d->simulator().set_trace(nullptr);

    Stream s;
    std::ostringstream os;
    sink.write_jsonl(os);
    s.jsonl = os.str();
    s.phase = m.phase;
    s.completed = m.completed;
    return s;
}

class SpanDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(SpanDeterminism, JsonlByteIdenticalAcrossSimThreads) {
    const std::string proto = GetParam();
    Stream serial = run(proto, 1);
    ASSERT_GT(serial.completed, 0u);
    ASSERT_FALSE(serial.jsonl.empty());
    ASSERT_FALSE(serial.phase.empty()) << "no request span completed in the window";
    for (unsigned threads : {2u, 8u}) {
        Stream parallel = run(proto, threads);
        EXPECT_EQ(serial.completed, parallel.completed) << "threads=" << threads;
        EXPECT_EQ(serial.jsonl, parallel.jsonl) << "threads=" << threads;
        EXPECT_EQ(serial.phase, parallel.phase) << "threads=" << threads;
    }
}

INSTANTIATE_TEST_SUITE_P(Protocols, SpanDeterminism,
                         ::testing::Values("neo_hm", "neo_pk", "pbft", "hotstuff"));

}  // namespace
}  // namespace neo::bench
