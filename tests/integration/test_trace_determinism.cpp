// Trace layer end-to-end: tracing a full NeoBFT deployment is deterministic
// (same seed -> byte-identical exports) and produces structurally valid
// Chrome trace_event JSON with one named track per node.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "../neobft/neobft_test_util.hpp"
#include "obs/trace.hpp"

namespace neo::neobft {
namespace {

using testutil::DeploymentOptions;
using testutil::NeoDeployment;

struct TraceRun {
    std::string jsonl;
    std::string chrome;
    std::size_t events = 0;
};

TraceRun traced_run(std::uint64_t seed, double drop_rate) {
    DeploymentOptions opts;
    opts.seed = seed;
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    opts.client.retry_timeout = 5 * sim::kMillisecond;
    NeoDeployment d(opts);
    d.net.set_global_drop_rate(drop_rate);

    obs::TraceSink sink;
    for (auto& rep : d.replicas) {
        sink.set_node_name(rep->id(), "replica " + std::to_string(rep->id()));
    }
    sink.set_node_name(NeoDeployment::kSwitchBase, "sequencer");
    sink.set_node_name(NeoDeployment::kConfigId, "config service");
    d.sim.set_trace(&sink);

    d.run_workload(2, 8, 30 * sim::kSecond);

    TraceRun out;
    out.events = sink.size();
    std::ostringstream jsonl, chrome;
    sink.write_jsonl(jsonl);
    sink.write_chrome_trace(chrome);
    out.jsonl = jsonl.str();
    out.chrome = chrome.str();
    return out;
}

TEST(TraceDeterminism, SameSeedByteIdenticalExports) {
    TraceRun a = traced_run(77, 0.0);
    TraceRun b = traced_run(77, 0.0);
    EXPECT_GT(a.events, 0u);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.jsonl, b.jsonl);
    EXPECT_EQ(a.chrome, b.chrome);
}

TEST(TraceDeterminism, SameSeedByteIdenticalUnderLoss) {
    TraceRun a = traced_run(101, 0.03);
    TraceRun b = traced_run(101, 0.03);
    EXPECT_EQ(a.jsonl, b.jsonl);
    EXPECT_EQ(a.chrome, b.chrome);
    // Loss must actually show up in the trace as attributed drops.
    EXPECT_NE(a.jsonl.find("\"ev\":\"packet_drop\""), std::string::npos);
    EXPECT_NE(a.jsonl.find("\"reason\":\"link_loss\""), std::string::npos);
}

TEST(TraceDeterminism, DifferentSeedsDifferentTraces) {
    TraceRun a = traced_run(1, 0.03);
    TraceRun b = traced_run(2, 0.03);
    EXPECT_NE(a.jsonl, b.jsonl);
}

TEST(TraceDeterminism, ChromeTraceIsStructurallyValidWithPerNodeTracks) {
    TraceRun run = traced_run(42, 0.0);
    const std::string& out = run.chrome;

    // Envelope and process metadata.
    EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(out.find("],\"displayTimeUnit\":\"ns\"}"), std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"name\":\"neobft-sim\"}"), std::string::npos);

    // One named track per protocol node.
    for (NodeId r = NeoDeployment::kReplicaBase; r < NeoDeployment::kReplicaBase + 4; ++r) {
        EXPECT_NE(out.find("\"tid\":" + std::to_string(r) + ",\"args\":{\"name\":\"replica " +
                           std::to_string(r) + "\"}"),
                  std::string::npos);
    }
    EXPECT_NE(out.find("\"args\":{\"name\":\"sequencer\"}"), std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"name\":\"config service\"}"), std::string::npos);

    // The protocol run leaves its signature events: sequencer stamps,
    // packet traffic and replica CPU spans.
    EXPECT_NE(out.find("\"cat\":\"seq_stamp\""), std::string::npos);
    EXPECT_NE(out.find("\"cat\":\"packet_send\""), std::string::npos);
    EXPECT_NE(out.find("\"cat\":\"packet_deliver\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);

    // Balanced braces/brackets outside strings: cheap whole-file JSON
    // structure check that needs no parser dependency.
    int brace = 0, bracket = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < out.size(); ++i) {
        char c = out[i];
        if (in_string) {
            if (c == '\\') ++i;
            else if (c == '"') in_string = false;
            continue;
        }
        switch (c) {
            case '"': in_string = true; break;
            case '{': ++brace; break;
            case '}': --brace; break;
            case '[': ++bracket; break;
            case ']': --bracket; break;
            default: break;
        }
        ASSERT_GE(brace, 0);
        ASSERT_GE(bracket, 0);
    }
    EXPECT_EQ(brace, 0);
    EXPECT_EQ(bracket, 0);
    EXPECT_FALSE(in_string);

    // Every JSONL line is an object.
    std::istringstream is(run.jsonl);
    std::size_t lines = 0;
    for (std::string line; std::getline(is, line); ++lines) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }
    EXPECT_EQ(lines, run.events);
}

}  // namespace
}  // namespace neo::neobft
