// 2PC liveness regression tests. Two bugs, each reproducible by flipping
// the fixed protocol back to its pre-fix configuration:
//
//  1. Coordinator crash between prepare and decision leaked the
//     participants' write locks forever (no presumed-abort sweep). The
//     orphaned locks starve every later transaction on those keys, and the
//     auditor's txn_orphan_prepare check flags the leak.
//  2. Under zipfian contention, no-wait 2PL (any lock conflict aborts)
//     livelocks: concurrent cross-shard transactions keep aborting each
//     other on the hot keys. Wait-die retries (young waits for old via
//     bounded backoff, old never waits for young) restore progress.
//
// Pre-fix expectations are asserted too: if the knob stops reproducing the
// failure, the regression test itself has rotted.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "apps/kvstore.hpp"
#include "harness/harness.hpp"

namespace neo::bench {
namespace {

constexpr std::uint64_t kSeed = 9090;

// Node-id layout mirrored from the sharded deployment (bench/harness/
// sharded.cpp): child client of (logical client c, shard s) and the home
// switch of shard s.
NodeId child_client_id(int c, int s) { return 1'000 + 32 * static_cast<NodeId>(c) + static_cast<NodeId>(s); }
NodeId home_switch_id(int s) { return 910 + static_cast<NodeId>(s); }

ShardParams params(bool fixed) {
    ShardParams p;
    p.n_shards = 2;
    p.n_replicas = 4;
    p.n_clients = 2;
    p.seed = kSeed;
    p.dataset.record_count = 1'000;
    // fixed = the shipped protocol; !fixed = the pre-fix configuration.
    // The sweep threshold is in executed ops, kept small so the sweep
    // fires within the test's workload.
    p.presumed_abort_after = fixed ? 40 : 0;
    return p;
}

ShardTxnWorkload workload() {
    ShardTxnWorkload w;
    w.n_shards = 2;
    w.cross_shard_ratio = 1.0;
    w.ops_per_txn = 3;
    w.seed = kSeed;
    w.dataset.record_count = 1'000;
    return w;
}

void drive_client(Deployment& d, const OpGen& gen, int client, int txns, sim::Time deadline) {
    auto issue = std::make_shared<std::function<void(std::uint64_t)>>();
    *issue = [&d, issue, &gen, client, txns](std::uint64_t k) {
        if (k >= static_cast<std::uint64_t>(txns)) return;
        d.invoke(client, gen(client, k), [issue, k](Bytes) { (*issue)(k + 1); });
    };
    (*issue)(0);
    d.simulator().run_until(deadline);
}

bool has_violation(const obs::Auditor& aud, std::string_view invariant) {
    for (const auto& v : aud.violations()) {
        if (std::string_view(v.invariant) == invariant) return true;
    }
    return false;
}

/// Crashes client 0's coordinator mid-2PC with shard 0 prepared and the
/// shard-1 prepare stuck behind a network block, then runs client 1's
/// workload over the same key space. Returns the deployment for
/// inspection; `end` receives the finalize timestamp.
std::unique_ptr<Deployment> run_coordinator_crash(bool fixed, sim::Time& end) {
    auto d = make_sharded_neobft(params(fixed));
    OpGen gen = sharded_txn_ops(workload(), d->n_clients());
    sim::Network& net = d->network();

    // Stage the crash: prepares go out in ascending shard order, so with
    // the shard-1 path blocked the coordinator sits between phase 1 and
    // phase 2 holding shard-0 locks.
    net.block(child_client_id(0, 1), home_switch_id(1));
    d->invoke(0, gen(0, 0), [](Bytes) { FAIL() << "abandoned txn must not complete"; });
    d->simulator().run_until(5 * sim::kMillisecond);
    EXPECT_EQ(d->txn_totals().txns_started, 1u);
    EXPECT_TRUE(d->abandon_coordinator(0));
    net.unblock(child_client_id(0, 1), home_switch_id(1));

    // Client 1 now works the same (zipfian-hot) keys; its ops are also the
    // executed-op clock that drives the presumed-abort sweep.
    drive_client(*d, gen, 1, 30, 120 * sim::kMillisecond);
    end = d->simulator().now();
    return d;
}

TEST(TxnLiveness, CoordinatorCrashLeaksLocksWithoutPresumedAbort) {
    sim::Time end = 0;
    auto d = run_coordinator_crash(/*fixed=*/false, end);

    obs::Auditor& aud = d->auditor();
    aud.set_txn_orphan_grace(10 * sim::kMillisecond, end);
    aud.finalize();
    EXPECT_TRUE(has_violation(aud, "txn_orphan_prepare"))
        << "pre-fix configuration no longer reproduces the lock leak";
}

TEST(TxnLiveness, PresumedAbortReleasesOrphanedLocks) {
    sim::Time end = 0;
    auto d = run_coordinator_crash(/*fixed=*/true, end);

    obs::Auditor& aud = d->auditor();
    aud.set_txn_orphan_grace(10 * sim::kMillisecond, end);
    aud.finalize();
    EXPECT_FALSE(has_violation(aud, "txn_orphan_prepare"))
        << (aud.violations().empty() ? "" : aud.violations()[0].to_string());

    // The sweep freed the keys: client 1 made progress through them.
    Deployment::TxnTotals t = d->txn_totals();
    EXPECT_GT(t.committed_txns, 0u);
    EXPECT_EQ(t.committed_txns + t.aborted_txns, t.txns_started - 1)
        << "every surviving txn must reach a decision (the abandoned one has none)";
}

/// Four coordinators hammer the same zipfian-hot keys with all-cross-shard
/// transactions; returns committed counts under the given lock discipline.
Deployment::TxnTotals run_contention(bool wait_die, std::uint64_t& min_client_committed) {
    ShardParams p = params(/*fixed=*/true);
    p.n_clients = 4;
    p.wait_die = wait_die;
    auto d = make_sharded_neobft(p);
    OpGen gen = sharded_txn_ops(workload(), d->n_clients());

    constexpr int kTxns = 12;
    auto issue = std::make_shared<std::function<void(int, std::uint64_t)>>();
    auto committed = std::make_shared<std::vector<std::uint64_t>>(4, 0);
    *issue = [&d, issue, &gen, committed](int c, std::uint64_t k) {
        if (k >= kTxns) return;
        d->invoke(c, gen(c, k), [issue, committed, c, k](Bytes reply) {
            auto res = app::KvResult::parse(BytesView(reply.data(), reply.size()));
            if (res && res->status == app::KvStatus::kOk) {
                ++(*committed)[static_cast<std::size_t>(c)];
            }
            (*issue)(c, k + 1);
        });
    };
    for (int c = 0; c < 4; ++c) (*issue)(c, 0);
    d->simulator().run_until(200 * sim::kMillisecond);

    obs::Auditor& aud = d->auditor();
    aud.finalize();
    EXPECT_TRUE(aud.ok()) << aud.violations()[0].to_string();

    min_client_committed = ~0ull;
    for (std::uint64_t n : *committed) min_client_committed = std::min(min_client_committed, n);
    return d->txn_totals();
}

TEST(TxnLiveness, ZipfianContentionLivelocksUnderNoWait2pl) {
    std::uint64_t min_fixed = 0, min_prefix = 0;
    Deployment::TxnTotals fixed = run_contention(/*wait_die=*/true, min_fixed);
    Deployment::TxnTotals prefix = run_contention(/*wait_die=*/false, min_prefix);

    // Both disciplines decide every transaction (2PC safety is not at
    // stake — progress is).
    EXPECT_EQ(fixed.committed_txns + fixed.aborted_txns, fixed.txns_started);
    EXPECT_EQ(prefix.committed_txns + prefix.aborted_txns, prefix.txns_started);

    // Post-fix: contention is resolved by ordered waiting, so commits
    // dominate and every client gets through the hot keys.
    EXPECT_GE(fixed.committed_txns * 2, fixed.txns_started)
        << "wait-die should commit the majority of contended txns";
    EXPECT_GT(min_fixed, 0u) << "a client starved despite wait-die";

    // Pre-fix: no-wait 2PL measurably livelocks the same workload.
    EXPECT_LT(prefix.committed_txns, fixed.committed_txns)
        << "pre-fix configuration no longer reproduces the livelock";
}

}  // namespace
}  // namespace neo::bench
