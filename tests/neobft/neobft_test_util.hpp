// Full NeoBFT deployment fixture for tests: N replicas, sequencer switch
// pool, configuration service, and closed-loop clients.
#pragma once

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aom/config_service.hpp"
#include "neobft/client.hpp"
#include "neobft/replica.hpp"

namespace neo::neobft::testutil {

struct DeploymentOptions {
    int n_replicas = 4;
    aom::AuthVariant variant = aom::AuthVariant::kHmacVector;
    aom::NetworkTrust trust = aom::NetworkTrust::kCrashOnly;
    crypto::CryptoMode crypto_mode = crypto::CryptoMode::kReal;
    int n_switches = 1;
    aom::SequencerConfig sequencer{};
    aom::ReceiverOptions receiver{};
    Config protocol{};  // replicas/f/group/config_service filled in by the fixture
    ClientOptions client{};
    std::uint64_t seed = 12345;
    /// Replica state machine factory (defaults to the echo app).
    std::function<std::unique_ptr<app::StateMachine>()> app_factory =
        [] { return std::make_unique<app::EchoApp>(); };
};

class NeoDeployment {
  public:
    static constexpr GroupId kGroup = 7;
    static constexpr NodeId kConfigId = 100;
    static constexpr NodeId kSwitchBase = 200;
    static constexpr NodeId kClientBase = 400;
    static constexpr NodeId kReplicaBase = 1;

    explicit NeoDeployment(DeploymentOptions opts = {})
        : opts_(opts), net(sim, opts.seed), root(opts.crypto_mode, opts.seed + 1),
          keys(opts.seed + 2) {
        net.set_default_link(sim::datacenter_link());

        int f = (opts.n_replicas - 1) / 3;
        cfg = opts.protocol;
        cfg.f = f;
        cfg.group = kGroup;
        cfg.config_service = kConfigId;
        for (int i = 0; i < opts.n_replicas; ++i) {
            cfg.replicas.push_back(kReplicaBase + static_cast<NodeId>(i));
        }

        group.group = kGroup;
        group.variant = opts.variant;
        group.trust = opts.trust;
        group.f = f;
        group.receivers = cfg.replicas;

        for (int s = 0; s < opts.n_switches; ++s) {
            NodeId sid = kSwitchBase + static_cast<NodeId>(s);
            auto sw = std::make_unique<aom::SequencerSwitch>(opts.sequencer,
                                                             root.provision(sid), &keys);
            net.add_node(*sw, sid);
            switches.push_back(std::move(sw));
        }
        std::vector<aom::SequencerSwitch*> pool;
        for (auto& sw : switches) pool.push_back(sw.get());
        config = std::make_unique<aom::ConfigService>(&keys, pool);
        net.add_node(*config, kConfigId);
        config->register_group(group);

        for (int i = 0; i < opts.n_replicas; ++i) {
            NodeId rid = kReplicaBase + static_cast<NodeId>(i);
            auto rep = std::make_unique<Replica>(cfg, root.provision(rid), &keys,
                                                 opts.app_factory(), opts.receiver);
            net.add_node(*rep, rid);
            rep->bootstrap(group, config->current_sequencer(kGroup));
            replicas.push_back(std::move(rep));
        }
    }

    Client& add_client() {
        NodeId cid = kClientBase + static_cast<NodeId>(clients.size());
        auto client = std::make_unique<Client>(cfg, root.provision(cid), config.get(),
                                               opts_.client);
        net.add_node(*client, cid);
        clients.push_back(std::move(client));
        return *clients.back();
    }

    /// Closed-loop driver: each client issues `ops_per_client` operations
    /// back-to-back; returns the results in completion order per client.
    std::vector<std::vector<std::string>> run_workload(int n_clients, int ops_per_client,
                                                       sim::Time deadline = 10 * sim::kSecond) {
        std::vector<std::vector<std::string>> results(static_cast<std::size_t>(n_clients));
        for (int c = 0; c < n_clients; ++c) {
            Client& client = add_client();
            issue(client, c, 0, ops_per_client, results[static_cast<std::size_t>(c)]);
        }
        sim.run_until(deadline);
        return results;
    }

    /// Checks that every pair of replica logs agrees on every slot both have.
    void expect_prefix_consistent() const {
        for (std::size_t a = 0; a < replicas.size(); ++a) {
            for (std::size_t b = a + 1; b < replicas.size(); ++b) {
                const Log& la = replicas[a]->log();
                const Log& lb = replicas[b]->log();
                std::uint64_t common = std::min(la.size(), lb.size());
                for (std::uint64_t s = 1; s <= common; ++s) {
                    ASSERT_EQ(la.at(s).noop, lb.at(s).noop)
                        << "slot " << s << " replicas " << a << "," << b;
                    if (!la.at(s).noop) {
                        ASSERT_EQ(la.at(s).oc.digest, lb.at(s).oc.digest)
                            << "slot " << s << " replicas " << a << "," << b;
                    }
                    ASSERT_EQ(la.hash_at(s), lb.hash_at(s)) << "slot " << s;
                }
            }
        }
    }

    DeploymentOptions opts_;
    sim::Simulator sim;
    sim::Network net;
    crypto::TrustRoot root;
    aom::AomKeyService keys;
    Config cfg;
    aom::GroupConfig group;
    std::vector<std::unique_ptr<aom::SequencerSwitch>> switches;
    std::unique_ptr<aom::ConfigService> config;
    std::vector<std::unique_ptr<Replica>> replicas;
    std::vector<std::unique_ptr<Client>> clients;

  private:
    void issue(Client& client, int c, int i, int total, std::vector<std::string>& out) {
        if (i >= total) return;
        std::string op = "op-" + std::to_string(c) + "-" + std::to_string(i);
        client.invoke(to_bytes(op), [this, &client, c, i, total, &out](Bytes result) {
            out.push_back(to_string(result));
            issue(client, c, i + 1, total, out);
        });
    }
};

}  // namespace neo::neobft::testutil
