// Checkpointing + crash recovery lifecycle (DESIGN.md §6): periodic
// checkpoints become stable via sync certificates and GC the log prefix; a
// crashed replica recovers by installing the latest stable checkpoint over
// Merkle-verified state transfer and rejoins the live stream.
#include <gtest/gtest.h>

#include "neobft_test_util.hpp"

namespace neo::neobft {
namespace {

using testutil::DeploymentOptions;
using testutil::NeoDeployment;

DeploymentOptions checkpoint_opts(std::uint64_t interval = 128) {
    DeploymentOptions opts;
    opts.protocol.sync_interval = 128;
    opts.protocol.checkpoint_interval = interval;
    return opts;
}

/// Prefix consistency over the retained window only (GC'd slots are gone;
/// the shared chain anchor at each base stands in for them).
void expect_retained_suffix_consistent(const NeoDeployment& d) {
    for (std::size_t a = 0; a < d.replicas.size(); ++a) {
        for (std::size_t b = a + 1; b < d.replicas.size(); ++b) {
            const Log& la = d.replicas[a]->log();
            const Log& lb = d.replicas[b]->log();
            std::uint64_t from = std::max(la.base(), lb.base());
            std::uint64_t to = std::min(la.size(), lb.size());
            ASSERT_EQ(la.hash_at(from), lb.hash_at(from)) << "anchor " << from;
            for (std::uint64_t s = from + 1; s <= to; ++s) {
                ASSERT_EQ(la.hash_at(s), lb.hash_at(s))
                    << "slot " << s << " replicas " << a << "," << b;
            }
        }
    }
}

TEST(Checkpoint, StableCheckpointsGcTheLogPrefix) {
    NeoDeployment d(checkpoint_opts());
    auto results = d.run_workload(2, 200);  // 400 slots: several boundaries
    ASSERT_EQ(results[0].size(), 200u);
    ASSERT_EQ(results[1].size(), 200u);

    for (auto& rep : d.replicas) {
        EXPECT_GT(rep->stats().checkpoints_taken, 0u);
        EXPECT_GT(rep->stats().checkpoints_stable, 0u);
        EXPECT_GE(rep->stable_checkpoint_slot(), 128u);
        EXPECT_EQ(rep->stable_checkpoint_slot() % 128, 0u);
        // The stable prefix is gone; slot numbering stays absolute.
        EXPECT_EQ(rep->log().base(), rep->stable_checkpoint_slot());
        EXPECT_GE(rep->log().size(), 400u);
        EXPECT_FALSE(rep->log().has(rep->log().base()));
    }
    expect_retained_suffix_consistent(d);
}

TEST(Checkpoint, DisabledByDefault) {
    NeoDeployment d;  // checkpoint_interval = 0
    d.run_workload(2, 150);
    for (auto& rep : d.replicas) {
        EXPECT_EQ(rep->stats().checkpoints_taken, 0u);
        EXPECT_EQ(rep->stable_checkpoint_slot(), 0u);
        EXPECT_EQ(rep->log().base(), 0u);
    }
}

TEST(Checkpoint, CrashedReplicaRecoversViaStateTransfer) {
    NeoDeployment d(checkpoint_opts());
    // run_until advances the clock to the full deadline, so each phase
    // gets its own window.
    d.run_workload(2, 100, 1 * sim::kSecond);  // 200 slots, checkpoint at 128 stable

    Replica& victim = *d.replicas.back();
    victim.crash();
    EXPECT_TRUE(victim.crashed());
    const std::uint64_t crash_size = victim.log().size();

    // The group keeps committing without the victim (f = 1 tolerated).
    d.run_workload(2, 100, 2 * sim::kSecond);
    victim.recover();
    // Recovery needs live traffic to observe the current stream position.
    auto results = d.run_workload(2, 100, 3 * sim::kSecond);
    for (const auto& r : results) ASSERT_EQ(r.size(), 100u);

    EXPECT_FALSE(victim.crashed());
    EXPECT_FALSE(victim.recovering());
    // It rejoined: log advanced well past the crash point and tracks the
    // live group within one sync window.
    EXPECT_GT(victim.log().size(), crash_size);
    std::uint64_t group_size = d.replicas.front()->log().size();
    EXPECT_GE(victim.log().size() + 128, group_size);
    // It came back via checkpoint install, not genesis replay: the log
    // base is a checkpoint boundary past zero.
    EXPECT_GT(victim.log().base(), 0u);
    EXPECT_EQ(victim.log().base() % 128, 0u);
    EXPECT_GT(victim.stats().requests_executed, 0u);
    expect_retained_suffix_consistent(d);
}

TEST(Checkpoint, RecoveryWorksOnThePkVariant) {
    DeploymentOptions opts = checkpoint_opts();
    opts.variant = aom::AuthVariant::kPublicKey;
    NeoDeployment d(opts);
    d.run_workload(2, 100, 1 * sim::kSecond);

    Replica& victim = *d.replicas.back();
    victim.crash();
    d.run_workload(2, 80, 2 * sim::kSecond);
    victim.recover();
    auto results = d.run_workload(2, 80, 3 * sim::kSecond);
    for (const auto& r : results) ASSERT_EQ(r.size(), 80u);

    EXPECT_FALSE(victim.crashed());
    EXPECT_GT(victim.log().base(), 0u);
    expect_retained_suffix_consistent(d);
}

TEST(Checkpoint, RepeatedCrashRecoverCycles) {
    NeoDeployment d(checkpoint_opts());
    sim::Time t = 1 * sim::kSecond;
    d.run_workload(2, 100, t);
    Replica& victim = *d.replicas.back();
    for (int cycle = 0; cycle < 3; ++cycle) {
        victim.crash();
        d.run_workload(1, 60, t += sim::kSecond);
        victim.recover();
        auto results = d.run_workload(1, 60, t += sim::kSecond);
        ASSERT_EQ(results[0].size(), 60u) << "cycle " << cycle;
        EXPECT_FALSE(victim.crashed()) << "cycle " << cycle;
    }
    expect_retained_suffix_consistent(d);
}

}  // namespace
}  // namespace neo::neobft
