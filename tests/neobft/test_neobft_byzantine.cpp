// Byzantine replica behaviours: equivocation, forged protocol messages and
// garbage must never violate safety or block progress (f=1, N=4).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "neobft_test_util.hpp"

namespace neo::neobft {
namespace {

using testutil::DeploymentOptions;
using testutil::NeoDeployment;

TEST(NeoByzantine, GarbageFromReplicaIgnored) {
    NeoDeployment d;
    Rng rng(5);
    // Replica 4 sprays random protocol-kind bytes at everyone.
    for (int i = 0; i < 500; ++i) {
        Bytes junk = rng.bytes(1 + rng.uniform(100));
        junk[0] = static_cast<std::uint8_t>(0x20 + rng.uniform(18));
        d.net.send(4, 1 + rng.uniform(3) % 3, junk);
    }
    auto results = d.run_workload(2, 10);
    EXPECT_EQ(results[0].size(), 10u);
    EXPECT_EQ(results[1].size(), 10u);
    d.expect_prefix_consistent();
}

TEST(NeoByzantine, ForgedGapDropCannotCommitNoOp) {
    // A Byzantine replica sends gap-drop/gap-commit messages for a slot the
    // others committed normally; nothing must change.
    NeoDeployment d;
    auto results = d.run_workload(1, 3);
    ASSERT_EQ(results[0].size(), 3u);

    // Forge gap-commits claiming slot 2 dropped, "signed" with garbage.
    for (NodeId target : {1u, 2u, 3u}) {
        GapCommit forged;
        forged.view = {1, 0};
        forged.replica = 4;
        forged.slot = 2;
        forged.recv = false;
        forged.signature = Bytes(64, 0x42);
        d.net.send(4, target, forged.serialize());
    }
    d.sim.run_until(d.sim.now() + sim::kSecond);

    for (auto& rep : d.replicas) {
        ASSERT_GE(rep->log().size(), 3u);
        EXPECT_FALSE(rep->log().at(2).noop);
    }
    d.expect_prefix_consistent();
}

TEST(NeoByzantine, ForgedViewStartRejected) {
    NeoDeployment d;
    auto results = d.run_workload(1, 2);
    ASSERT_EQ(results[0].size(), 2u);

    // Replica 4 (not the leader of <1,1>) forges a VIEW-START for view
    // <1,1> with fabricated view-change messages.
    ViewStart vs;
    vs.new_view = {1, 1};
    for (NodeId r : {1u, 3u, 4u}) {
        ViewChange vc;
        vc.new_view = vs.new_view;
        vc.replica = r;
        vc.signature = Bytes(64, static_cast<std::uint8_t>(r));
        vs.msgs.push_back(vc);
    }
    vs.signature = Bytes(64, 0x99);
    for (NodeId target : {1u, 2u, 3u}) d.net.send(4, target, vs.serialize());
    d.sim.run_until(d.sim.now() + sim::kSecond);

    for (auto& rep : d.replicas) {
        EXPECT_EQ(rep->view(), (ViewId{1, 0})) << "forged view start accepted!";
    }
}

TEST(NeoByzantine, SingleViewChangeVoteDoesNotForceViewChange) {
    // One Byzantine replica repeatedly demands view changes; with a healthy
    // leader the probe finds it alive and nobody joins.
    NeoDeployment d;
    auto results = d.run_workload(1, 2);
    ASSERT_EQ(results[0].size(), 2u);

    for (int round = 0; round < 3; ++round) {
        ViewChange vc;
        vc.new_view = {1, static_cast<LeaderNum>(1 + round)};
        vc.replica = 4;
        vc.signature = Bytes(64, 0x01);  // invalid signature anyway
        for (NodeId target : {1u, 2u, 3u}) d.net.send(4, target, vc.serialize());
        d.sim.run_until(d.sim.now() + 100 * sim::kMillisecond);
    }
    for (std::size_t i = 0; i + 1 < d.replicas.size(); ++i) {
        EXPECT_EQ(d.replicas[i]->view(), (ViewId{1, 0}));
    }
    // System still live.
    auto more = d.run_workload(1, 2, d.sim.now() + 5 * sim::kSecond);
    EXPECT_EQ(more[0].size(), 2u);
}

TEST(NeoByzantine, ReplayedRequestsExecuteOnce) {
    NeoDeployment d;
    auto results = d.run_workload(1, 1);
    ASSERT_EQ(results[0].size(), 1u);
    std::uint64_t executed_before = d.replicas[0]->stats().requests_executed;

    // Capture the committed request from the log and replay it through aom.
    const auto& oc = d.replicas[0]->log().at(1).oc;
    aom::DataPacket replay;
    replay.group = NeoDeployment::kGroup;
    replay.payload = oc.payload;
    replay.digest = oc.digest;
    for (int i = 0; i < 5; ++i) {
        d.net.send(999, d.config->current_sequencer(NeoDeployment::kGroup), replay.serialize());
    }
    d.sim.run_until(d.sim.now() + sim::kSecond);

    for (auto& rep : d.replicas) {
        // Replays occupy log slots (aom sequenced them) but execute nothing.
        EXPECT_EQ(rep->stats().requests_executed, executed_before);
        EXPECT_EQ(rep->log().size(), 6u);
    }
    d.expect_prefix_consistent();
}

TEST(NeoByzantine, WrongViewGapMessagesIgnored) {
    NeoDeployment d;
    auto results = d.run_workload(1, 2);
    ASSERT_EQ(results[0].size(), 2u);

    // Gap messages claiming a future view must be ignored outright.
    GapFind find;
    find.view = {1, 5};
    find.slot = 1;
    find.signature = Bytes(64, 1);
    d.net.send(4, 2, find.serialize());

    GapDecision decision;
    decision.view = {3, 0};
    decision.slot = 1;
    decision.recv = false;
    decision.signature = Bytes(64, 2);
    d.net.send(4, 2, decision.serialize());

    d.sim.run_until(d.sim.now() + sim::kSecond);
    EXPECT_FALSE(d.replicas[1]->log().at(1).noop);
    EXPECT_EQ(d.replicas[1]->view(), (ViewId{1, 0}));
}

TEST(NeoByzantine, TamperedReplyMacRejectedByClient) {
    NeoDeployment d;
    // Corrupt every reply from replica 2 to clients; the client must still
    // commit with the other three replicas' replies.
    d.net.set_tamper([](NodeId from, NodeId to, Bytes& data) {
        if (from == 2 && to >= NeoDeployment::kClientBase && !data.empty() &&
            data[0] == static_cast<std::uint8_t>(MsgKind::kReply)) {
            data.back() ^= 0xff;
        }
        return sim::TamperAction::kDeliver;
    });
    auto results = d.run_workload(1, 5);
    EXPECT_EQ(results[0].size(), 5u);
}

}  // namespace
}  // namespace neo::neobft
