// Gap handling (§5.4): QUERY recovery, the binary gap agreement, no-op
// commitment and speculative rollback.
#include <gtest/gtest.h>

#include "neobft_test_util.hpp"

namespace neo::neobft {
namespace {

using testutil::DeploymentOptions;
using testutil::NeoDeployment;

// Drops all switch->replica traffic for `victim` while active.
struct SwitchDropper {
    explicit SwitchDropper(NeoDeployment& d, std::vector<NodeId> victims)
        : victims_(std::move(victims)) {
        d.net.set_tamper([this](NodeId from, NodeId to, Bytes&) {
            if (active && from >= NeoDeployment::kSwitchBase &&
                from < NeoDeployment::kSwitchBase + 10) {
                for (NodeId v : victims_) {
                    if (to == v) return sim::TamperAction::kDrop;
                }
            }
            return sim::TamperAction::kDeliver;
        });
    }
    bool active = true;
    std::vector<NodeId> victims_;
};

TEST(NeoGaps, NonLeaderRecoversViaQuery) {
    // Replica 2 (non-leader) misses a message; it must fetch the ordering
    // certificate from the leader and catch up without any agreement round.
    DeploymentOptions opts;
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    NeoDeployment d(opts);
    SwitchDropper dropper(d, {2});

    Client& client = d.add_client();
    int done = 0;
    client.invoke(to_bytes("first"), [&](Bytes) { ++done; });
    d.sim.run_until(2 * sim::kMillisecond);
    dropper.active = false;
    client.invoke(to_bytes("second"), [&](Bytes) { ++done; });
    d.sim.run_until(sim::kSecond);

    EXPECT_EQ(done, 2);
    // Replica 2 recovered both entries.
    EXPECT_EQ(d.replicas[1]->log().size(), 2u);
    EXPECT_FALSE(d.replicas[1]->log().at(1).noop);
    EXPECT_GE(d.replicas[1]->stats().queries_sent, 1u);
    EXPECT_EQ(d.replicas[1]->stats().gap_noops_committed, 0u);
    d.expect_prefix_consistent();
}

TEST(NeoGaps, AllReplicasMissCommitsNoOp) {
    // Every replica misses the message: the leader collects 2f+1 gap-drops
    // and the slot commits as a no-op.
    DeploymentOptions opts;
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    NeoDeployment d(opts);
    SwitchDropper dropper(d, {1, 2, 3, 4});

    Client& client = d.add_client();
    int done = 0;
    client.invoke(to_bytes("vanishes"), [&](Bytes) { ++done; });
    d.sim.run_until(3 * sim::kMillisecond);
    dropper.active = false;
    // A second message creates the seq gap that triggers detection.
    Client& client2 = d.add_client();
    client2.invoke(to_bytes("arrives"), [&](Bytes) { ++done; });
    d.sim.run_until(2 * sim::kSecond);

    // The vanished request is retried by its client and eventually commits
    // (in a later slot); the original slot is a no-op everywhere.
    EXPECT_EQ(done, 2);
    for (auto& rep : d.replicas) {
        ASSERT_GE(rep->log().size(), 2u);
        EXPECT_TRUE(rep->log().at(1).noop) << "replica " << rep->id();
        EXPECT_GE(rep->stats().gap_noops_committed, 1u);
    }
    d.expect_prefix_consistent();
}

TEST(NeoGaps, LeaderMissesButFollowerHasIt) {
    // Only the leader misses the message: GAP-FIND-MESSAGE yields a
    // GAP-RECV-MESSAGE from a follower and the slot commits as the request.
    DeploymentOptions opts;
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    NeoDeployment d(opts);
    SwitchDropper dropper(d, {1});  // replica 1 is leader of view <1,0>

    Client& client = d.add_client();
    int done = 0;
    client.invoke(to_bytes("leader-missed"), [&](Bytes) { ++done; });
    d.sim.run_until(2 * sim::kMillisecond);
    dropper.active = false;
    client.invoke(to_bytes("next"), [&](Bytes) { ++done; });
    d.sim.run_until(sim::kSecond);

    EXPECT_EQ(done, 2);
    for (auto& rep : d.replicas) {
        ASSERT_EQ(rep->log().size(), 2u);
        EXPECT_FALSE(rep->log().at(1).noop);
    }
    EXPECT_GE(d.replicas[0]->stats().gap_agreements_started, 1u);
    d.expect_prefix_consistent();
}

TEST(NeoGaps, RandomLossStaysConsistent) {
    // Property sweep: under random loss everything either commits or
    // no-ops, and logs stay prefix-consistent.
    DeploymentOptions opts;
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    opts.client.retry_timeout = 5 * sim::kMillisecond;
    NeoDeployment d(opts);
    sim::LinkConfig lossy = d.net.default_link();
    lossy.drop_rate = 0.05;
    d.net.set_default_link(lossy);

    auto results = d.run_workload(4, 15, 30 * sim::kSecond);
    for (const auto& r : results) EXPECT_EQ(r.size(), 15u);
    d.expect_prefix_consistent();
}

class GapLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(GapLossSweep, ConsistentUnderLossRate) {
    DeploymentOptions opts;
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    opts.client.retry_timeout = 5 * sim::kMillisecond;
    opts.seed = 999 + static_cast<std::uint64_t>(GetParam() * 10000);
    NeoDeployment d(opts);
    d.net.set_global_drop_rate(GetParam());

    auto results = d.run_workload(3, 10, 60 * sim::kSecond);
    for (const auto& r : results) EXPECT_EQ(r.size(), 10u) << "loss " << GetParam();
    d.expect_prefix_consistent();
}

INSTANTIATE_TEST_SUITE_P(Rates, GapLossSweep, ::testing::Values(0.001, 0.01, 0.05, 0.1));

TEST(NeoGaps, RollbackOnNoOpCommit) {
    // Replica 2 receives and speculatively executes a message that every
    // other replica misses; the agreement commits a no-op and replica 2
    // must roll back.
    DeploymentOptions opts;
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    // Keep replica 2's copy: drop switch traffic to everyone EXCEPT 2.
    NeoDeployment d(opts);
    bool drop_switch = true;
    d.net.set_tamper([&](NodeId from, NodeId to, Bytes& data) {
        if (drop_switch && from >= NeoDeployment::kSwitchBase &&
            (to == 1 || to == 3 || to == 4)) {
            return sim::TamperAction::kDrop;
        }
        // Permanently block replica 2 from handing its ordering certificate
        // to anyone, so the drop decision wins (models the oc replies being
        // lost; safety must still hold).
        if (from == 2 && !data.empty() &&
            (data[0] == static_cast<std::uint8_t>(MsgKind::kGapRecv) ||
             data[0] == static_cast<std::uint8_t>(MsgKind::kQueryReply))) {
            return sim::TamperAction::kDrop;
        }
        return sim::TamperAction::kDeliver;
    });

    Client& client = d.add_client();
    int done = 0;
    client.invoke(to_bytes("spec-exec"), [&](Bytes) { ++done; });
    d.sim.run_until(1 * sim::kMillisecond);
    // Replica 2 executed speculatively.
    EXPECT_EQ(d.replicas[1]->stats().requests_executed, 1u);

    d.sim.run_until(10 * sim::kMillisecond);
    drop_switch = false;
    d.sim.run_until(2 * sim::kSecond);

    // The slot became a no-op everywhere; replica 2 rolled back.
    for (auto& rep : d.replicas) {
        ASSERT_GE(rep->log().size(), 1u);
        EXPECT_TRUE(rep->log().at(1).noop) << "replica " << rep->id();
    }
    EXPECT_GE(d.replicas[1]->stats().rollbacks, 1u);
    auto& echo = dynamic_cast<app::EchoApp&>(d.replicas[1]->app());
    // The rolled-back op no longer counts (client retry may have re-landed
    // it in a later slot, but never twice).
    EXPECT_LE(echo.executed(), 1u);
    d.expect_prefix_consistent();
    EXPECT_EQ(done, 1);  // the client's retry eventually committed
}

TEST(NeoGaps, GapCertificateInLogIsValid) {
    DeploymentOptions opts;
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    NeoDeployment d(opts);
    SwitchDropper dropper(d, {1, 2, 3, 4});
    Client& client = d.add_client();
    client.invoke(to_bytes("gone"), [](Bytes) {});
    d.sim.run_until(3 * sim::kMillisecond);
    dropper.active = false;
    Client& client2 = d.add_client();
    client2.invoke(to_bytes("later"), [](Bytes) {});
    d.sim.run_until(2 * sim::kSecond);

    for (auto& rep : d.replicas) {
        ASSERT_TRUE(rep->log().at(1).noop);
        const GapCertificate& cert = rep->log().at(1).gap_cert;
        EXPECT_FALSE(cert.recv);
        EXPECT_EQ(cert.slot, 1u);
        EXPECT_TRUE(verify_gap_certificate(cert, d.cfg, rep->node_crypto()));
    }
}

}  // namespace
}  // namespace neo::neobft

namespace neo::neobft {
namespace {

using testutil::DeploymentOptions;
using testutil::NeoDeployment;

TEST(NeoGapsRecovery, LostGapFindIsRetransmitted) {
    // Drop the leader's FIRST gap-find broadcast entirely; the retry timer
    // must re-send it and the agreement must still conclude.
    DeploymentOptions opts;
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    NeoDeployment d(opts);
    int finds_dropped = 0;
    bool drop_switch = true;
    d.net.set_tamper([&](NodeId from, NodeId to, Bytes& data) {
        if (drop_switch && from >= NeoDeployment::kSwitchBase &&
            to >= 1 && to <= 4) {
            return sim::TamperAction::kDrop;
        }
        if (!data.empty() && data[0] == static_cast<std::uint8_t>(MsgKind::kGapFind) &&
            finds_dropped < 3) {
            ++finds_dropped;
            return sim::TamperAction::kDrop;
        }
        return sim::TamperAction::kDeliver;
    });

    Client& client = d.add_client();
    int done = 0;
    client.invoke(to_bytes("lost-find"), [&](Bytes) { ++done; });
    d.sim.run_until(3 * sim::kMillisecond);
    drop_switch = false;
    d.sim.run_until(5 * sim::kSecond);

    EXPECT_EQ(done, 1);
    EXPECT_GE(finds_dropped, 3);
    for (auto& rep : d.replicas) {
        ASSERT_GE(rep->log().size(), 1u);
        EXPECT_TRUE(rep->log().at(1).noop);
    }
    d.expect_prefix_consistent();
}

TEST(NeoGapsRecovery, LostGapCommitsRetransmitted) {
    // Drop a fraction of gap prepare/commit messages; retransmission must
    // still converge (no view change needed).
    DeploymentOptions opts;
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    opts.protocol.view_change_timeout = 500 * sim::kMillisecond;  // disable churn
    NeoDeployment d(opts);
    auto rng = std::make_shared<Rng>(7);
    bool drop_switch = true;
    d.net.set_tamper([&, rng](NodeId from, NodeId to, Bytes& data) {
        if (drop_switch && from >= NeoDeployment::kSwitchBase && to >= 1 && to <= 4) {
            return sim::TamperAction::kDrop;
        }
        if (!data.empty() &&
            (data[0] == static_cast<std::uint8_t>(MsgKind::kGapPrepare) ||
             data[0] == static_cast<std::uint8_t>(MsgKind::kGapCommit) ||
             data[0] == static_cast<std::uint8_t>(MsgKind::kGapDecision)) &&
            rng->chance(0.5)) {
            return sim::TamperAction::kDrop;
        }
        return sim::TamperAction::kDeliver;
    });

    Client& client = d.add_client();
    int done = 0;
    client.invoke(to_bytes("flaky-agreement"), [&](Bytes) { ++done; });
    d.sim.run_until(3 * sim::kMillisecond);
    drop_switch = false;
    d.sim.run_until(10 * sim::kSecond);

    EXPECT_EQ(done, 1);
    for (auto& rep : d.replicas) {
        EXPECT_EQ(rep->stats().view_changes_started, 0u) << "should resolve without churn";
    }
    d.expect_prefix_consistent();
}

TEST(NeoGapsRecovery, HighLossSoakStaysConsistent) {
    // Regression soak for the fig9 failure mode: sustained load at 1% loss
    // with a tight reorder window; drop-notifications consumed before view
    // changes must still get resolved in the new views.
    DeploymentOptions opts;
    opts.receiver.gap_timeout = 100 * sim::kMicrosecond;
    opts.client.retry_timeout = 5 * sim::kMillisecond;
    opts.crypto_mode = crypto::CryptoMode::kModeled;
    NeoDeployment d(opts);
    d.net.set_global_drop_rate(0.01);
    auto results = d.run_workload(8, 40, 120 * sim::kSecond);
    for (const auto& r : results) EXPECT_EQ(r.size(), 40u);
    d.expect_prefix_consistent();
}

}  // namespace
}  // namespace neo::neobft
