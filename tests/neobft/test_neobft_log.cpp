// Log hash chain + quorum-certificate validation.
#include "neobft/log.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace neo::neobft {
namespace {

LogEntry request_entry(std::string_view payload) {
    LogEntry e;
    e.noop = false;
    e.oc.payload = to_bytes(payload);
    e.oc.digest = crypto::sha256(e.oc.payload);
    return e;
}

LogEntry noop_entry() {
    LogEntry e;
    e.noop = true;
    return e;
}

TEST(NeoLog, AppendExtendsChain) {
    Log log;
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.hash_at(0), Digest32{});
    log.append(request_entry("a"));
    log.append(request_entry("b"));
    EXPECT_EQ(log.size(), 2u);
    EXPECT_NE(log.hash_at(1), log.hash_at(2));
    EXPECT_NE(log.hash_at(1), Digest32{});
}

TEST(NeoLog, ChainIsDeterministic) {
    Log a, b;
    for (int i = 0; i < 5; ++i) {
        a.append(request_entry("op" + std::to_string(i)));
        b.append(request_entry("op" + std::to_string(i)));
    }
    for (std::uint64_t s = 1; s <= 5; ++s) EXPECT_EQ(a.hash_at(s), b.hash_at(s));
}

TEST(NeoLog, ChainDependsOnContentAndOrder) {
    Log a, b;
    a.append(request_entry("x"));
    a.append(request_entry("y"));
    b.append(request_entry("y"));
    b.append(request_entry("x"));
    EXPECT_NE(a.hash_at(2), b.hash_at(2));
}

TEST(NeoLog, NoOpChangesChain) {
    Log a, b;
    a.append(request_entry("x"));
    b.append(noop_entry());
    EXPECT_NE(a.hash_at(1), b.hash_at(1));
}

TEST(NeoLog, ReplaceRechainsSuffix) {
    Log log;
    log.append(request_entry("a"));
    log.append(request_entry("b"));
    log.append(request_entry("c"));
    Digest32 old3 = log.hash_at(3);
    log.replace(2, noop_entry());
    EXPECT_TRUE(log.at(2).noop);
    EXPECT_NE(log.hash_at(3), old3);
    // Slot 1 untouched.
    Log fresh;
    fresh.append(request_entry("a"));
    EXPECT_EQ(log.hash_at(1), fresh.hash_at(1));
}

TEST(NeoLog, TruncateRemovesTail) {
    Log log;
    for (int i = 0; i < 5; ++i) log.append(request_entry(std::to_string(i)));
    log.truncate_to(2);
    EXPECT_EQ(log.size(), 2u);
    EXPECT_TRUE(log.has(2));
    EXPECT_FALSE(log.has(3));
}

TEST(NeoLog, GcPrefixDropsEntriesButKeepsTheChain) {
    Log log, full;
    for (int i = 0; i < 8; ++i) {
        log.append(request_entry("op" + std::to_string(i)));
        full.append(request_entry("op" + std::to_string(i)));
    }
    log.gc_prefix(5);
    EXPECT_EQ(log.base(), 5u);
    EXPECT_EQ(log.size(), 8u);  // slot numbers stay absolute
    EXPECT_FALSE(log.has(5));
    EXPECT_TRUE(log.has(6));
    // The chain anchor survives: hashes of retained slots (and the base
    // itself) match an un-GC'd log with the same history.
    for (std::uint64_t s = 5; s <= 8; ++s) EXPECT_EQ(log.hash_at(s), full.hash_at(s));
    // Appending after GC continues the same chain.
    log.append(request_entry("tail"));
    full.append(request_entry("tail"));
    EXPECT_EQ(log.hash_at(9), full.hash_at(9));
}

TEST(NeoLog, GcPrefixIsIdempotentAndMonotonic) {
    Log log;
    for (int i = 0; i < 6; ++i) log.append(request_entry(std::to_string(i)));
    log.gc_prefix(4);
    Digest32 anchor = log.hash_at(4);
    log.gc_prefix(4);  // same slot: no-op
    log.gc_prefix(2);  // below base: no-op
    EXPECT_EQ(log.base(), 4u);
    EXPECT_EQ(log.hash_at(4), anchor);
    log.gc_prefix(6);  // advance further
    EXPECT_EQ(log.base(), 6u);
    EXPECT_EQ(log.size(), 6u);
}

TEST(NeoLog, ResetBaseInstallsAFetchedCheckpoint) {
    // A recovering replica that fetched checkpoint state at slot 100
    // restarts its log there with the certified cumulative hash.
    Log donor;
    for (int i = 0; i < 10; ++i) donor.append(request_entry(std::to_string(i)));
    Digest32 anchor = donor.hash_at(10);

    Log log;
    log.append(request_entry("stale"));
    log.reset_base(10, anchor);
    EXPECT_EQ(log.base(), 10u);
    EXPECT_EQ(log.size(), 10u);
    EXPECT_EQ(log.hash_at(10), anchor);
    // The chain continues identically on both replicas from here.
    donor.append(request_entry("next"));
    log.append(request_entry("next"));
    EXPECT_EQ(log.hash_at(11), donor.hash_at(11));
}

TEST(NeoLog, TruncateRespectsTheGcBase) {
    Log log;
    for (int i = 0; i < 8; ++i) log.append(request_entry(std::to_string(i)));
    log.gc_prefix(4);
    log.truncate_to(6);  // tail rollback above the base is fine
    EXPECT_EQ(log.size(), 6u);
    EXPECT_EQ(log.base(), 4u);
    log.truncate_to(4);  // down to exactly the base: empty retained window
    EXPECT_EQ(log.size(), 4u);
    EXPECT_FALSE(log.has(4));
}

TEST(NeoLog, WireEntryRoundTrips) {
    Log log;
    log.append(request_entry("payload"));
    LogEntry ne = noop_entry();
    ne.gap_cert.slot = 2;
    log.append(std::move(ne));
    EXPECT_FALSE(log.wire_entry(1).noop);
    EXPECT_EQ(log.wire_entry(1).oc.digest, log.at(1).oc.digest);
    EXPECT_TRUE(log.wire_entry(2).noop);
    EXPECT_EQ(log.wire_entry(2).gap_cert.slot, 2u);
}

class CertValidation : public ::testing::Test {
  protected:
    CertValidation() : root(crypto::CryptoMode::kReal, 7) {
        cfg.replicas = {1, 2, 3, 4};
        cfg.f = 1;
        for (NodeId r : cfg.replicas) nodes[r] = root.provision(r);
        verifier = root.provision(99);
    }

    GapCertificate make_gap_cert(std::uint64_t slot, bool recv, std::vector<NodeId> signers) {
        GapCertificate cert;
        cert.view = {1, 0};
        cert.slot = slot;
        cert.recv = recv;
        for (NodeId r : signers) {
            GapCommit c;
            c.view = cert.view;
            c.replica = r;
            c.slot = slot;
            c.recv = recv;
            cert.commits.push_back({r, nodes[r]->sign(c.signed_body())});
        }
        return cert;
    }

    crypto::TrustRoot root;
    Config cfg;
    std::map<NodeId, std::unique_ptr<crypto::NodeCrypto>> nodes;
    std::unique_ptr<crypto::NodeCrypto> verifier;
};

TEST_F(CertValidation, ValidGapCertAccepted) {
    auto cert = make_gap_cert(5, false, {1, 2, 3});
    EXPECT_TRUE(verify_gap_certificate(cert, cfg, *verifier));
}

TEST_F(CertValidation, UndersizedGapCertRejected) {
    auto cert = make_gap_cert(5, false, {1, 2});
    EXPECT_FALSE(verify_gap_certificate(cert, cfg, *verifier));
}

TEST_F(CertValidation, DuplicateSignersRejected) {
    auto cert = make_gap_cert(5, false, {1, 2, 3});
    cert.commits[2] = cert.commits[0];  // 1,2,1
    EXPECT_FALSE(verify_gap_certificate(cert, cfg, *verifier));
}

TEST_F(CertValidation, NonMemberSignerIgnored) {
    auto cert = make_gap_cert(5, false, {1, 2, 3});
    cert.commits[2].replica = 77;
    EXPECT_FALSE(verify_gap_certificate(cert, cfg, *verifier));
}

TEST_F(CertValidation, WrongSlotSignatureRejected) {
    auto cert = make_gap_cert(5, false, {1, 2, 3});
    cert.slot = 6;  // signatures cover slot 5
    EXPECT_FALSE(verify_gap_certificate(cert, cfg, *verifier));
}

TEST_F(CertValidation, FlippedDecisionRejected) {
    auto cert = make_gap_cert(5, false, {1, 2, 3});
    cert.recv = true;
    EXPECT_FALSE(verify_gap_certificate(cert, cfg, *verifier));
}

TEST_F(CertValidation, EpochCert) {
    EpochCertificate cert;
    cert.epoch = 2;
    cert.slot = 40;
    for (NodeId r : {1u, 2u, 3u}) {
        EpochStart e;
        e.epoch = 2;
        e.replica = r;
        e.slot = 40;
        cert.sigs.push_back({r, nodes[r]->sign(e.signed_body())});
    }
    EXPECT_TRUE(verify_epoch_certificate(cert, cfg, *verifier));
    cert.slot = 41;
    EXPECT_FALSE(verify_epoch_certificate(cert, cfg, *verifier));
}

TEST_F(CertValidation, SyncCert) {
    SyncCertificate cert;
    cert.view = {1, 0};
    cert.slot = 128;
    cert.log_hash = crypto::sha256("prefix");
    for (NodeId r : {2u, 3u, 4u}) {
        SyncMsg m;
        m.view = cert.view;
        m.replica = r;
        m.slot = cert.slot;
        m.log_hash = cert.log_hash;
        cert.sigs.push_back({r, nodes[r]->sign(m.signed_body())});
    }
    EXPECT_TRUE(verify_sync_certificate(cert, cfg, *verifier));
    cert.log_hash = crypto::sha256("other");
    EXPECT_FALSE(verify_sync_certificate(cert, cfg, *verifier));
}

TEST_F(CertValidation, SyncCertCoversTheAppHash) {
    // Regression: verification used to rebuild the signed body with a zero
    // app_hash, rejecting every certificate taken with checkpointing
    // enabled — which wedged crash recovery (on_ckpt_meta dropped all
    // offers) and view changes carrying checkpoint certs.
    SyncCertificate cert;
    cert.view = {1, 0};
    cert.slot = 128;
    cert.log_hash = crypto::sha256("prefix");
    cert.app_hash = crypto::sha256("snapshot-root");
    for (NodeId r : {2u, 3u, 4u}) {
        SyncMsg m;
        m.view = cert.view;
        m.replica = r;
        m.slot = cert.slot;
        m.log_hash = cert.log_hash;
        m.app_hash = cert.app_hash;
        cert.sigs.push_back({r, nodes[r]->sign(m.signed_body())});
    }
    EXPECT_TRUE(verify_sync_certificate(cert, cfg, *verifier));
    // And the root is bound: a substituted snapshot root must not verify.
    cert.app_hash = crypto::sha256("evil-root");
    EXPECT_FALSE(verify_sync_certificate(cert, cfg, *verifier));
}

TEST(NeoConfig, LeaderRotation) {
    Config cfg;
    cfg.replicas = {10, 20, 30, 40};
    cfg.f = 1;
    EXPECT_EQ(cfg.leader_of({1, 0}), 10u);
    EXPECT_EQ(cfg.leader_of({1, 1}), 20u);
    EXPECT_EQ(cfg.leader_of({1, 4}), 10u);
    EXPECT_EQ(cfg.leader_of({2, 1}), 20u);
    EXPECT_EQ(cfg.quorum(), 3u);
    EXPECT_EQ(cfg.others(20), (std::vector<NodeId>{10, 30, 40}));
}

}  // namespace
}  // namespace neo::neobft
