// Wire round trips and malformed-input rejection for NeoBFT messages.
#include "neobft/messages.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace neo::neobft {
namespace {

template <typename T>
T reparse(const T& msg) {
    Bytes wire = msg.serialize();
    Reader r(BytesView(wire).subspan(1));
    return T::parse(r);
}

Digest32 d32(std::uint8_t fill) {
    Digest32 d;
    d.fill(fill);
    return d;
}

aom::OrderingCert sample_oc() {
    aom::OrderingCert oc;
    oc.variant = aom::AuthVariant::kHmacVector;
    oc.group = 7;
    oc.epoch = 1;
    oc.seq = 3;
    oc.payload = to_bytes("payload");
    oc.digest = crypto::sha256(oc.payload);
    oc.macs = {1, 2, 3, 4};
    return oc;
}

TEST(NeoMessages, ViewIdOrdering) {
    EXPECT_LT((ViewId{1, 0}), (ViewId{1, 1}));
    EXPECT_LT((ViewId{1, 5}), (ViewId{2, 0}));
    EXPECT_EQ((ViewId{2, 3}), (ViewId{2, 3}));
}

TEST(NeoMessages, RequestRoundTrip) {
    Request m;
    m.client = 400;
    m.request_id = 17;
    m.op = to_bytes("put k v");
    m.signature = Bytes(64, 0xaa);
    Request q = reparse(m);
    EXPECT_EQ(q.client, 400u);
    EXPECT_EQ(q.request_id, 17u);
    EXPECT_EQ(q.op, m.op);
    EXPECT_EQ(q.signature, m.signature);
}

TEST(NeoMessages, RequestSignedBodyExcludesSignature) {
    Request a;
    a.client = 1;
    a.request_id = 2;
    a.op = to_bytes("x");
    a.signature = Bytes(64, 0x01);
    Request b = a;
    b.signature = Bytes(64, 0x02);
    EXPECT_EQ(a.signed_body(), b.signed_body());
}

TEST(NeoMessages, RequestParsePayload) {
    Request m;
    m.client = 4;
    m.op = to_bytes("op");
    Bytes wire = m.serialize();
    auto parsed = Request::parse_payload(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->client, 4u);

    EXPECT_FALSE(Request::parse_payload({}).has_value());
    Bytes junk{0x21, 0x00};
    EXPECT_FALSE(Request::parse_payload(junk).has_value());
    wire.pop_back();
    EXPECT_FALSE(Request::parse_payload(wire).has_value());
}

TEST(NeoMessages, ReplyRoundTrip) {
    Reply m;
    m.view = {2, 1};
    m.replica = 3;
    m.slot = 99;
    m.log_hash = d32(0x11);
    m.request_id = 5;
    m.result = to_bytes("ok");
    m.mac = Bytes(8, 0xbb);
    Reply q = reparse(m);
    EXPECT_EQ(q.view, m.view);
    EXPECT_EQ(q.slot, 99u);
    EXPECT_EQ(q.log_hash, m.log_hash);
    EXPECT_EQ(q.result, m.result);
    EXPECT_EQ(q.mac, m.mac);
}

TEST(NeoMessages, GapMessagesRoundTrip) {
    Query query{{1, 0}, 7};
    Query q2 = reparse(query);
    EXPECT_EQ(q2.slot, 7u);

    QueryReply qr;
    qr.view = {1, 0};
    qr.slot = 7;
    qr.oc = sample_oc();
    QueryReply qr2 = reparse(qr);
    EXPECT_EQ(qr2.oc.seq, 3u);
    EXPECT_EQ(qr2.oc.macs, qr.oc.macs);

    GapFind gf;
    gf.view = {1, 2};
    gf.slot = 9;
    gf.signature = Bytes(64, 1);
    GapFind gf2 = reparse(gf);
    EXPECT_EQ(gf2.view.leader, 2u);

    GapDrop gd;
    gd.view = {1, 0};
    gd.replica = 2;
    gd.slot = 9;
    gd.signature = Bytes(64, 2);
    GapDrop gd2 = reparse(gd);
    EXPECT_EQ(gd2.replica, 2u);
}

TEST(NeoMessages, GapDecisionRecvRoundTrip) {
    GapDecision m;
    m.view = {1, 0};
    m.slot = 4;
    m.recv = true;
    m.oc = sample_oc();
    m.signature = Bytes(64, 3);
    GapDecision q = reparse(m);
    EXPECT_TRUE(q.recv);
    ASSERT_TRUE(q.oc.has_value());
    EXPECT_EQ(q.oc->digest, m.oc->digest);
    EXPECT_TRUE(q.drops.empty());
}

TEST(NeoMessages, GapDecisionDropRoundTrip) {
    GapDecision m;
    m.view = {1, 0};
    m.slot = 4;
    m.recv = false;
    for (NodeId r = 1; r <= 3; ++r) {
        GapDrop d;
        d.view = m.view;
        d.replica = r;
        d.slot = 4;
        d.signature = Bytes(64, static_cast<std::uint8_t>(r));
        m.drops.push_back(d);
    }
    m.signature = Bytes(64, 9);
    GapDecision q = reparse(m);
    EXPECT_FALSE(q.recv);
    ASSERT_EQ(q.drops.size(), 3u);
    EXPECT_EQ(q.drops[2].replica, 3u);
}

TEST(NeoMessages, GapPrepareCommitDistinctBodies) {
    GapPrepare p;
    p.view = {1, 0};
    p.replica = 2;
    p.slot = 4;
    p.recv = true;
    GapCommit c;
    c.view = p.view;
    c.replica = 2;
    c.slot = 4;
    c.recv = true;
    EXPECT_NE(p.signed_body(), c.signed_body());

    GapPrepare p2 = p;
    p2.recv = false;
    EXPECT_NE(p.signed_body(), p2.signed_body());
}

TEST(NeoMessages, SyncRoundTrip) {
    SyncMsg m;
    m.view = {1, 0};
    m.replica = 2;
    m.slot = 128;
    m.log_hash = d32(0x42);
    GapCertificate cert;
    cert.view = {1, 0};
    cert.slot = 100;
    cert.recv = false;
    cert.commits = {{1, Bytes(64, 1)}, {2, Bytes(64, 2)}, {3, Bytes(64, 3)}};
    m.drops.push_back(cert);
    m.signature = Bytes(64, 7);
    SyncMsg q = reparse(m);
    EXPECT_EQ(q.slot, 128u);
    ASSERT_EQ(q.drops.size(), 1u);
    EXPECT_EQ(q.drops[0], cert);
}

TEST(NeoMessages, EpochStartRoundTrip) {
    EpochStart m;
    m.epoch = 3;
    m.replica = 1;
    m.slot = 77;
    m.signature = Bytes(64, 1);
    EpochStart q = reparse(m);
    EXPECT_EQ(q.epoch, 3u);
    EXPECT_EQ(q.slot, 77u);
}

TEST(NeoMessages, ViewChangeRoundTrip) {
    ViewChange m;
    m.new_view = {2, 1};
    m.replica = 3;
    m.sync_cert.view = {1, 0};
    m.sync_cert.slot = 10;
    m.sync_cert.log_hash = d32(0x01);
    m.sync_cert.sigs = {{1, Bytes(64, 1)}, {2, Bytes(64, 2)}, {4, Bytes(64, 4)}};
    ViewChange::EpochStartInfo info;
    info.epoch = 2;
    info.start_slot = 12;
    info.cert.epoch = 2;
    info.cert.slot = 11;
    info.cert.sigs = {{1, Bytes(64, 5)}, {2, Bytes(64, 6)}, {3, Bytes(64, 7)}};
    m.epochs.push_back(info);
    m.suffix_base = 10;
    WireLogEntry req_entry;
    req_entry.noop = false;
    req_entry.oc = sample_oc();
    m.suffix.push_back(req_entry);
    WireLogEntry noop_entry;
    noop_entry.noop = true;
    noop_entry.gap_cert.view = {1, 0};
    noop_entry.gap_cert.slot = 12;
    noop_entry.gap_cert.commits = {{1, Bytes(64, 8)}};
    m.suffix.push_back(noop_entry);
    m.signature = Bytes(64, 9);

    ViewChange q = reparse(m);
    EXPECT_EQ(q.new_view, m.new_view);
    EXPECT_EQ(q.sync_cert.slot, 10u);
    ASSERT_EQ(q.epochs.size(), 1u);
    EXPECT_EQ(q.epochs[0].start_slot, 12u);
    ASSERT_EQ(q.suffix.size(), 2u);
    EXPECT_FALSE(q.suffix[0].noop);
    EXPECT_TRUE(q.suffix[1].noop);
    EXPECT_EQ(q.suffix[1].gap_cert.slot, 12u);
}

TEST(NeoMessages, ViewStartRoundTrip) {
    ViewStart m;
    m.new_view = {1, 1};
    ViewChange vc;
    vc.new_view = {1, 1};
    vc.replica = 2;
    vc.signature = Bytes(64, 1);
    m.msgs.push_back(vc);
    m.signature = Bytes(64, 2);
    ViewStart q = reparse(m);
    ASSERT_EQ(q.msgs.size(), 1u);
    EXPECT_EQ(q.msgs[0].replica, 2u);
}

TEST(NeoMessages, StateTransferRoundTrip) {
    StateReq req{5, 10};
    StateReq req2 = reparse(req);
    EXPECT_EQ(req2.from_slot, 5u);
    EXPECT_EQ(req2.to_slot, 10u);

    StateReply rep;
    rep.base_slot = 5;
    WireLogEntry e;
    e.noop = false;
    e.oc = sample_oc();
    rep.entries.push_back(e);
    StateReply rep2 = reparse(rep);
    EXPECT_EQ(rep2.base_slot, 5u);
    ASSERT_EQ(rep2.entries.size(), 1u);
    EXPECT_EQ(rep2.entries[0].oc.seq, 3u);
}

TEST(NeoMessages, TruncationRejected) {
    Request m;
    m.client = 1;
    m.op = to_bytes("full request body");
    m.signature = Bytes(64, 1);
    Bytes wire = m.serialize();
    for (std::size_t cut = 1; cut + 1 < wire.size(); cut += 5) {
        Reader r(BytesView(wire).subspan(1, cut));
        EXPECT_THROW(Request::parse(r), CodecError) << cut;
    }
}

TEST(NeoMessages, OversizedQuorumRejected) {
    Writer w;
    w.u32(100'000);  // absurd quorum count
    Reader r(w.bytes());
    EXPECT_THROW(get_signer_sigs(r), CodecError);
}

}  // namespace
}  // namespace neo::neobft
