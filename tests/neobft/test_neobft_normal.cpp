// NeoBFT normal operation (§5.3): single-round-trip commitment with no
// cross-replica coordination.
#include <gtest/gtest.h>

#include "neobft_test_util.hpp"
#include "crypto/sha256.hpp"

namespace neo::neobft {
namespace {

using testutil::DeploymentOptions;
using testutil::NeoDeployment;

TEST(NeoNormal, SingleRequestCommits) {
    NeoDeployment d;
    auto results = d.run_workload(1, 1);
    ASSERT_EQ(results[0].size(), 1u);
    EXPECT_EQ(results[0][0], "op-0-0");  // echo app
    for (auto& rep : d.replicas) {
        EXPECT_EQ(rep->log().size(), 1u);
        EXPECT_EQ(rep->stats().requests_executed, 1u);
    }
    d.expect_prefix_consistent();
}

TEST(NeoNormal, NoCrossReplicaMessagesInCommonCase) {
    NeoDeployment d;
    // Count replica-to-replica packets with a tamper probe.
    std::uint64_t cross_replica = 0;
    auto is_replica = [](NodeId n) { return n >= 1 && n <= 4; };
    d.net.set_tamper([&](NodeId from, NodeId to, Bytes&) {
        if (is_replica(from) && is_replica(to)) ++cross_replica;
        return sim::TamperAction::kDeliver;
    });
    auto results = d.run_workload(2, 20);
    EXPECT_EQ(results[0].size(), 20u);
    EXPECT_EQ(results[1].size(), 20u);
    // 40 entries committed, below the sync boundary (128): the common case
    // exchanged NO replica-to-replica messages and signed nothing.
    EXPECT_EQ(cross_replica, 0u);
    for (auto& rep : d.replicas) {
        EXPECT_EQ(rep->node_crypto().meter().signs, 0u);
    }
}

TEST(NeoNormal, ClosedLoopSequentialResults) {
    NeoDeployment d;
    auto results = d.run_workload(1, 50);
    ASSERT_EQ(results[0].size(), 50u);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(results[0][static_cast<std::size_t>(i)], "op-0-" + std::to_string(i));
    }
    d.expect_prefix_consistent();
}

TEST(NeoNormal, ManyClientsAllCommit) {
    NeoDeployment d;
    auto results = d.run_workload(8, 25);
    std::size_t total = 0;
    for (const auto& r : results) total += r.size();
    EXPECT_EQ(total, 200u);
    for (auto& rep : d.replicas) EXPECT_EQ(rep->log().size(), 200u);
    d.expect_prefix_consistent();
}

TEST(NeoNormal, AllReplicasExecuteSameOrder) {
    NeoDeployment d;
    d.run_workload(4, 10);
    const Log& ref = d.replicas[0]->log();
    for (auto& rep : d.replicas) {
        ASSERT_EQ(rep->log().size(), ref.size());
        for (std::uint64_t s = 1; s <= ref.size(); ++s) {
            EXPECT_EQ(rep->log().at(s).oc.digest, ref.at(s).oc.digest) << s;
        }
    }
}

TEST(NeoNormal, PkVariantCommits) {
    DeploymentOptions opts;
    opts.variant = aom::AuthVariant::kPublicKey;
    NeoDeployment d(opts);
    auto results = d.run_workload(2, 15);
    EXPECT_EQ(results[0].size(), 15u);
    EXPECT_EQ(results[1].size(), 15u);
    d.expect_prefix_consistent();
}

TEST(NeoNormal, ByzantineNetworkModeCommits) {
    DeploymentOptions opts;
    opts.trust = aom::NetworkTrust::kByzantine;
    NeoDeployment d(opts);
    auto results = d.run_workload(2, 10);
    EXPECT_EQ(results[0].size(), 10u);
    EXPECT_EQ(results[1].size(), 10u);
    d.expect_prefix_consistent();
}

TEST(NeoNormal, ToleratesSilentReplica) {
    // With f=1 and one silent (Byzantine-quiet) replica, clients still get
    // 2f+1 = 3 matching replies and commit at full speed.
    NeoDeployment d;
    d.replicas[3]->set_silent(true);
    auto results = d.run_workload(2, 20);
    EXPECT_EQ(results[0].size(), 20u);
    EXPECT_EQ(results[1].size(), 20u);
}

TEST(NeoNormal, SevenReplicasF2) {
    DeploymentOptions opts;
    opts.n_replicas = 7;
    NeoDeployment d(opts);
    d.replicas[5]->set_silent(true);
    d.replicas[6]->set_silent(true);
    auto results = d.run_workload(2, 10);
    EXPECT_EQ(results[0].size(), 10u);
    EXPECT_EQ(results[1].size(), 10u);
    d.expect_prefix_consistent();
}

TEST(NeoNormal, DuplicateSequencedRequestNotReExecuted) {
    // Force a client retry that results in the same request being sequenced
    // twice: drop all replies from all replicas to the client briefly.
    DeploymentOptions opts;
    opts.client.retry_timeout = 3 * sim::kMillisecond;
    NeoDeployment d(opts);
    bool drop_replies = true;
    d.net.set_tamper([&](NodeId from, NodeId to, Bytes&) {
        if (drop_replies && to >= NeoDeployment::kClientBase && from < 100) {
            return sim::TamperAction::kDrop;
        }
        return sim::TamperAction::kDeliver;
    });
    Client& client = d.add_client();
    std::vector<std::string> results;
    client.invoke(to_bytes("only-once"), [&](Bytes r) { results.push_back(to_string(r)); });
    d.sim.run_until(8 * sim::kMillisecond);  // at least one retry fired
    drop_replies = false;
    d.sim.run_until(sim::kSecond);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_GE(client.retries(), 1u);
    for (auto& rep : d.replicas) {
        // The request may occupy several slots but executes exactly once.
        EXPECT_EQ(rep->stats().requests_executed, 1u);
    }
    d.expect_prefix_consistent();
}

TEST(NeoNormal, StateSyncCommitsPrefix) {
    DeploymentOptions opts;
    opts.protocol.sync_interval = 16;
    NeoDeployment d(opts);
    d.run_workload(4, 20);  // 80 entries -> several sync rounds
    for (auto& rep : d.replicas) {
        EXPECT_GE(rep->stats().syncs_completed, 4u);
        EXPECT_GE(rep->sync_point(), 64u);
        auto& echo = dynamic_cast<app::EchoApp&>(rep->app());
        EXPECT_GE(echo.committed(), 64u);
    }
}

TEST(NeoNormal, RepliesCarryMatchingLogHashes) {
    NeoDeployment d;
    d.run_workload(1, 5);
    // All replicas have identical hash chains.
    for (std::uint64_t s = 1; s <= 5; ++s) {
        Digest32 h = d.replicas[0]->log().hash_at(s);
        for (auto& rep : d.replicas) EXPECT_EQ(rep->log().hash_at(s), h);
    }
}

TEST(NeoNormal, InvalidClientSignatureNotExecuted) {
    NeoDeployment d;
    // Craft a request with a bogus signature and push it through aom
    // directly.
    Request req;
    req.client = 999;
    req.request_id = 1;
    req.op = to_bytes("forged");
    req.signature = Bytes(64, 0x66);
    aom::DataPacket pkt;
    pkt.group = NeoDeployment::kGroup;
    pkt.payload = req.serialize();
    pkt.digest = crypto::sha256(pkt.payload);
    d.net.send(999, d.config->current_sequencer(NeoDeployment::kGroup), pkt.serialize());
    d.sim.run_until(sim::kSecond);

    for (auto& rep : d.replicas) {
        // The slot exists (aom ordered it) but nothing executed.
        ASSERT_EQ(rep->log().size(), 1u);
        EXPECT_FALSE(rep->log().at(1).valid_request);
        EXPECT_EQ(rep->stats().requests_executed, 0u);
    }
    d.expect_prefix_consistent();
}

TEST(NeoNormal, ModeledCryptoModeWorks) {
    DeploymentOptions opts;
    opts.crypto_mode = crypto::CryptoMode::kModeled;
    NeoDeployment d(opts);
    auto results = d.run_workload(2, 10);
    EXPECT_EQ(results[0].size(), 10u);
    d.expect_prefix_consistent();
}

class NeoNormalMatrix
    : public ::testing::TestWithParam<std::tuple<aom::AuthVariant, aom::NetworkTrust, int>> {};

TEST_P(NeoNormalMatrix, CommitsAcrossConfigurations) {
    auto [variant, trust, n] = GetParam();
    DeploymentOptions opts;
    opts.variant = variant;
    opts.trust = trust;
    opts.n_replicas = n;
    NeoDeployment d(opts);
    auto results = d.run_workload(2, 8);
    EXPECT_EQ(results[0].size(), 8u);
    EXPECT_EQ(results[1].size(), 8u);
    d.expect_prefix_consistent();
}

std::string matrix_name(
    const ::testing::TestParamInfo<std::tuple<aom::AuthVariant, aom::NetworkTrust, int>>& info) {
    std::string name =
        std::get<0>(info.param) == aom::AuthVariant::kHmacVector ? "Hm" : "Pk";
    name += std::get<1>(info.param) == aom::NetworkTrust::kCrashOnly ? "Crash" : "Byz";
    name += std::to_string(std::get<2>(info.param));
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, NeoNormalMatrix,
    ::testing::Combine(::testing::Values(aom::AuthVariant::kHmacVector,
                                         aom::AuthVariant::kPublicKey),
                       ::testing::Values(aom::NetworkTrust::kCrashOnly,
                                         aom::NetworkTrust::kByzantine),
                       ::testing::Values(4, 7)),
    matrix_name);

}  // namespace
}  // namespace neo::neobft
