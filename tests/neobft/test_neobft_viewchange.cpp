// View changes (§5.5/§B.1): leader replacement within an epoch and
// sequencer failover across epochs.
#include <gtest/gtest.h>

#include "neobft_test_util.hpp"

namespace neo::neobft {
namespace {

using testutil::DeploymentOptions;
using testutil::NeoDeployment;

DeploymentOptions fast_failover_opts() {
    DeploymentOptions opts;
    opts.n_switches = 2;
    opts.receiver.gap_timeout = 500 * sim::kMicrosecond;
    opts.protocol.view_change_timeout = 5 * sim::kMillisecond;
    opts.protocol.request_aom_timeout = 8 * sim::kMillisecond;
    opts.client.retry_timeout = 4 * sim::kMillisecond;
    return opts;
}

TEST(NeoViewChange, SequencerFailureTriggersEpochChange) {
    NeoDeployment d(fast_failover_opts());
    auto results = d.run_workload(1, 3);
    ASSERT_EQ(results[0].size(), 3u);

    // Kill the sequencer; new client traffic stalls, replicas learn of the
    // request via unicast retry, suspect the sequencer, and fail over.
    d.switches[0]->set_stall(true);
    Client& client = d.add_client();
    int done = 0;
    client.invoke(to_bytes("after-failure"), [&](Bytes) { ++done; });
    d.sim.run_until(d.sim.now() + 5 * sim::kSecond);

    EXPECT_EQ(done, 1);
    EXPECT_EQ(d.config->failovers_performed(), 1u);
    for (auto& rep : d.replicas) {
        EXPECT_EQ(rep->view().epoch, 2u);
        EXPECT_EQ(rep->status(), Replica::Status::kNormal);
        EXPECT_GE(rep->stats().views_entered, 1u);
    }
    d.expect_prefix_consistent();
}

TEST(NeoViewChange, ThroughputResumesAfterFailover) {
    NeoDeployment d(fast_failover_opts());
    auto before = d.run_workload(2, 5);
    ASSERT_EQ(before[0].size(), 5u);

    d.switches[0]->set_stall(true);
    auto after = d.run_workload(2, 10, d.sim.now() + 10 * sim::kSecond);
    EXPECT_EQ(after[0].size(), 10u);
    EXPECT_EQ(after[1].size(), 10u);
    for (auto& rep : d.replicas) EXPECT_EQ(rep->view().epoch, 2u);
    d.expect_prefix_consistent();
}

TEST(NeoViewChange, CommittedEntriesSurviveEpochChange) {
    NeoDeployment d(fast_failover_opts());
    auto results = d.run_workload(2, 10);
    ASSERT_EQ(results[0].size(), 10u);
    std::vector<Digest32> digests;
    for (std::uint64_t s = 1; s <= d.replicas[0]->log().size(); ++s) {
        digests.push_back(d.replicas[0]->log().at(s).noop ? Digest32{}
                                                          : d.replicas[0]->log().at(s).oc.digest);
    }

    d.switches[0]->set_stall(true);
    auto after = d.run_workload(1, 3, d.sim.now() + 10 * sim::kSecond);
    ASSERT_EQ(after[0].size(), 3u);

    for (auto& rep : d.replicas) {
        ASSERT_GE(rep->log().size(), digests.size());
        for (std::size_t i = 0; i < digests.size(); ++i) {
            if (digests[i] != Digest32{}) {
                EXPECT_EQ(rep->log().at(i + 1).oc.digest, digests[i]) << "slot " << i + 1;
            }
        }
    }
    d.expect_prefix_consistent();
}

TEST(NeoViewChange, EpochCertificatesRecorded) {
    NeoDeployment d(fast_failover_opts());
    d.run_workload(1, 2);
    d.switches[0]->set_stall(true);
    auto after = d.run_workload(1, 2, d.sim.now() + 10 * sim::kSecond);
    ASSERT_EQ(after[0].size(), 2u);

    // Sequence numbers restarted in epoch 2: the first epoch-2 entry maps to
    // slot 3 on every replica.
    for (auto& rep : d.replicas) {
        ASSERT_GE(rep->log().size(), 3u);
        EXPECT_EQ(rep->log().at(3).oc.epoch, 2u);
        EXPECT_EQ(rep->log().at(3).oc.seq, 1u);
    }
}

TEST(NeoViewChange, LeaderFailureDuringGapAgreement) {
    // The leader goes silent while a gap needs resolving; followers must
    // replace it (leader-num + 1, same epoch) and then resolve the gap.
    DeploymentOptions opts = fast_failover_opts();
    NeoDeployment d(opts);
    auto results = d.run_workload(1, 2);
    ASSERT_EQ(results[0].size(), 2u);

    // Silence the leader (replica 1, view <1,0>) and drop switch traffic to
    // replica 2 so it needs a QUERY that the dead leader never answers.
    d.replicas[0]->set_silent(true);
    bool active = true;
    d.net.set_tamper([&](NodeId from, NodeId to, Bytes&) {
        if (active && from >= NeoDeployment::kSwitchBase && to == 2) {
            return sim::TamperAction::kDrop;
        }
        return sim::TamperAction::kDeliver;
    });

    Client& client = d.add_client();
    int done = 0;
    client.invoke(to_bytes("needs-new-leader"), [&](Bytes) { ++done; });
    d.sim.run_until(d.sim.now() + 3 * sim::kMillisecond);
    active = false;
    d.sim.run_until(d.sim.now() + 10 * sim::kSecond);

    EXPECT_EQ(done, 1);
    for (std::size_t i = 1; i < d.replicas.size(); ++i) {
        EXPECT_GE(d.replicas[i]->view().leader, 1u) << "replica " << i + 1;
        EXPECT_EQ(d.replicas[i]->view().epoch, 1u);
        EXPECT_EQ(d.replicas[i]->status(), Replica::Status::kNormal);
    }
    d.expect_prefix_consistent();
}

TEST(NeoViewChange, RepeatedFailoversCycleSwitches) {
    NeoDeployment d(fast_failover_opts());
    auto r1 = d.run_workload(1, 2);
    ASSERT_EQ(r1[0].size(), 2u);

    d.switches[0]->set_stall(true);
    auto r2 = d.run_workload(1, 2, d.sim.now() + 10 * sim::kSecond);
    ASSERT_EQ(r2[0].size(), 2u);

    d.switches[1]->set_stall(true);
    d.switches[0]->set_stall(false);  // pool wraps back to switch 0
    auto r3 = d.run_workload(1, 2, d.sim.now() + 10 * sim::kSecond);
    ASSERT_EQ(r3[0].size(), 2u);

    EXPECT_EQ(d.config->failovers_performed(), 2u);
    for (auto& rep : d.replicas) EXPECT_EQ(rep->view().epoch, 3u);
    d.expect_prefix_consistent();
}

TEST(NeoViewChange, SyncPointBoundsViewChangePayload) {
    // After syncs, view-change messages only carry the suffix.
    DeploymentOptions opts = fast_failover_opts();
    opts.protocol.sync_interval = 8;
    NeoDeployment d(opts);
    auto r1 = d.run_workload(2, 20);
    ASSERT_EQ(r1[0].size(), 20u);
    for (auto& rep : d.replicas) EXPECT_GE(rep->sync_point(), 32u);

    d.switches[0]->set_stall(true);
    auto r2 = d.run_workload(1, 2, d.sim.now() + 10 * sim::kSecond);
    ASSERT_EQ(r2[0].size(), 2u);
    d.expect_prefix_consistent();
}

}  // namespace
}  // namespace neo::neobft
