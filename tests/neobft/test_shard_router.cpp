// ShardRouter unit tests: every key routes to exactly one shard (no
// orphans), routing is a pure function of the key bytes (stable across
// router instances and shard-count-preserving rebuilds), and assign_ranges
// tiles the full 64-bit hash space without gaps or overlap.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <vector>

#include "aom/types.hpp"
#include "common/bytes.hpp"
#include "neobft/shard_router.hpp"

namespace neo::neobft {
namespace {

std::vector<aom::GroupConfig> groups_of(std::size_t n, GroupId base = 7) {
    std::vector<aom::GroupConfig> gs(n);
    for (std::size_t i = 0; i < n; ++i) gs[i].group = base + static_cast<GroupId>(i);
    return gs;
}

Bytes key(unsigned i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "user%012u", i);
    return to_bytes(buf);
}

TEST(ShardRouter, AssignRangesTilesTheFullHashSpace) {
    for (std::size_t n : {1u, 2u, 3u, 4u, 8u, 16u}) {
        auto gs = ShardRouter::assign_ranges(groups_of(n));
        ASSERT_EQ(gs.size(), n);
        EXPECT_EQ(gs.front().key_lo, 0u);
        EXPECT_EQ(gs.back().key_hi, ~0ull);
        for (std::size_t i = 1; i < n; ++i) {
            EXPECT_EQ(gs[i - 1].key_hi + 1, gs[i].key_lo) << "gap/overlap at range " << i;
        }
        // Even split: every range within one hash of 2^64 / n wide.
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_GE(gs[i].key_hi, gs[i].key_lo);
            std::uint64_t width = gs[i].key_hi - gs[i].key_lo;  // inclusive - 1
            std::uint64_t expect = ~0ull / n;                   // ~ 2^64/n - 1
            EXPECT_LE(width > expect ? width - expect : expect - width, 1u);
        }
    }
}

TEST(ShardRouter, NoOrphanKeys) {
    // Every key routes, and to the shard whose range holds its hash.
    for (std::size_t n : {1u, 2u, 5u, 16u}) {
        auto gs = ShardRouter::assign_ranges(groups_of(n));
        ShardRouter r(gs);
        ASSERT_EQ(r.shards(), n);
        for (unsigned i = 0; i < 10'000; ++i) {
            Bytes k = key(i);
            std::size_t idx = r.shard_index(BytesView(k));
            ASSERT_LT(idx, n);
            std::uint64_t h = ShardRouter::key_hash(BytesView(k));
            EXPECT_GE(h, gs[idx].key_lo);
            EXPECT_LE(h, gs[idx].key_hi);
            EXPECT_EQ(r.route(BytesView(k)), gs[idx].group);
        }
    }
}

TEST(ShardRouter, StableAcrossInstancesAndGroupIds) {
    // shard_index depends only on the range tiling, not on group ids or
    // which instance computes it — the workload generator relies on this
    // to mirror the deployment's routing.
    auto a = ShardRouter(ShardRouter::assign_ranges(groups_of(8, 7)));
    auto b = ShardRouter(ShardRouter::assign_ranges(groups_of(8, 100)));
    for (unsigned i = 0; i < 5'000; ++i) {
        Bytes k = key(i * 31 + 5);
        EXPECT_EQ(a.shard_index(BytesView(k)), b.shard_index(BytesView(k)));
    }
}

TEST(ShardRouter, SpreadsKeysRoughlyEvenly) {
    constexpr std::size_t kShards = 8;
    constexpr unsigned kKeys = 40'000;
    ShardRouter r(ShardRouter::assign_ranges(groups_of(kShards)));
    std::map<std::size_t, unsigned> counts;
    for (unsigned i = 0; i < kKeys; ++i) counts[r.shard_index(BytesView(key(i)))]++;
    ASSERT_EQ(counts.size(), kShards) << "some shard received no keys";
    for (const auto& [shard, count] : counts) {
        // FNV-1a over structured keys: expect within 20% of uniform.
        EXPECT_NEAR(static_cast<double>(count), kKeys / double(kShards),
                    0.2 * kKeys / double(kShards))
            << "shard " << shard;
    }
}

TEST(ShardRouter, SingleShardOwnsEverything) {
    ShardRouter r(ShardRouter::assign_ranges(groups_of(1)));
    EXPECT_EQ(r.index_of_hash(0), 0u);
    EXPECT_EQ(r.index_of_hash(~0ull), 0u);
    EXPECT_EQ(r.route(BytesView(key(1))), 7u);
}

TEST(ShardRouter, BoundaryHashesRouteToAdjacentShards) {
    auto gs = ShardRouter::assign_ranges(groups_of(4));
    ShardRouter r(gs);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(r.index_of_hash(gs[i].key_lo), i);
        EXPECT_EQ(r.index_of_hash(gs[i].key_hi), i);
    }
}

}  // namespace
}  // namespace neo::neobft
