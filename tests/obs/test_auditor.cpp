// Unit tests for the online safety-invariant monitor (obs::Auditor):
// divergent commits at one slot, execution-frontier gaps/regressions with
// the rollback-replay exemption, per-epoch aom delivery contiguity, and
// view-decision conflicts. Records are pushed straight into shard 0 — the
// simulator integration (sharded reporting, deterministic merge) is
// exercised end-to-end by the harness tests.
#include "obs/auditor.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "obs/trace.hpp"

namespace neo::obs {
namespace {

Auditor make_auditor() {
    Auditor a;
    a.configure(2);  // one partition + the global-context shard
    return a;
}

std::size_t count(const Auditor& a, const char* invariant) {
    std::size_t n = 0;
    for (const auto& v : a.violations()) {
        if (std::strcmp(v.invariant, invariant) == 0) ++n;
    }
    return n;
}

TEST(Auditor, CleanExecutionAcrossReplicasPasses) {
    Auditor a = make_auditor();
    for (NodeId n = 1; n <= 3; ++n) {
        for (std::uint64_t s = 1; s <= 5; ++s) {
            a.on_execute(0, static_cast<sim::Time>(10 * s), n, s, 100 + s, /*noop=*/false);
        }
    }
    a.finalize();
    EXPECT_TRUE(a.ok());
    EXPECT_EQ(a.records(), 15u);
    EXPECT_TRUE(a.violations().empty());
}

TEST(Auditor, OkRequiresFinalize) {
    Auditor a = make_auditor();
    a.on_execute(0, 1, 1, 1, 42, false);
    EXPECT_FALSE(a.ok());
    a.finalize();
    EXPECT_TRUE(a.ok());
}

TEST(Auditor, DivergentCommitAtOneSlotFlaggedOnce) {
    Auditor a = make_auditor();
    a.on_execute(0, 10, 1, 1, 111, false);
    a.on_execute(0, 11, 2, 1, 222, false);  // conflicts with node 1
    a.on_execute(0, 12, 3, 1, 333, false);  // same slot: already flagged
    a.finalize();
    EXPECT_FALSE(a.ok());
    ASSERT_EQ(a.violations().size(), 1u);
    const auto& v = a.violations()[0];
    EXPECT_STREQ(v.invariant, "divergent_commit");
    EXPECT_EQ(v.slot, 1u);
    EXPECT_EQ(v.node_a, 1u);
    EXPECT_EQ(v.node_b, 2u);
    EXPECT_EQ(v.digest_a, 111u);
    EXPECT_EQ(v.digest_b, 222u);
}

TEST(Auditor, NoopBesideRequestIsNotDivergent) {
    // NeoBFT's gap agreement legitimately commits a noop at a slot where
    // another replica (holding the ordering certificate) commits the
    // request — in either observation order.
    Auditor a = make_auditor();
    a.on_execute(0, 10, 1, 1, 0, /*noop=*/true);
    a.on_execute(0, 11, 2, 1, 42, /*noop=*/false);
    a.on_execute(0, 12, 1, 2, 43, /*noop=*/false);
    a.on_execute(0, 13, 2, 2, 0, /*noop=*/true);
    a.finalize();
    EXPECT_TRUE(a.ok());
}

TEST(Auditor, ExecutionGapDetected) {
    Auditor a = make_auditor();
    a.on_execute(0, 10, 1, 1, 101, false);
    a.on_execute(0, 11, 1, 2, 102, false);
    a.on_execute(0, 12, 1, 4, 104, false);  // skipped slot 3
    a.finalize();
    EXPECT_EQ(count(a, "seq_gap"), 1u);
}

TEST(Auditor, ExecutionRegressionDetected) {
    Auditor a = make_auditor();
    a.on_execute(0, 10, 1, 1, 101, false);
    a.on_execute(0, 11, 1, 2, 102, false);
    a.on_execute(0, 12, 1, 2, 102, false);  // frontier moved backwards
    a.finalize();
    EXPECT_EQ(count(a, "seq_regression"), 1u);
}

TEST(Auditor, ReplayResetsTheFrontier) {
    // Epoch-change truncation can legitimately SHRINK the log; replay
    // records reset the frontier so the re-execution from the merge point
    // is not a regression.
    Auditor a = make_auditor();
    a.on_execute(0, 10, 1, 1, 101, false);
    a.on_execute(0, 11, 1, 2, 102, false);
    a.on_execute(0, 12, 1, 3, 103, false);
    a.on_execute(0, 20, 1, 1, 101, false, /*replay=*/true);
    a.on_execute(0, 21, 1, 2, 102, false, /*replay=*/true);
    a.on_execute(0, 22, 1, 3, 103, false);  // resumes from the replayed frontier
    a.on_execute(0, 23, 1, 4, 104, false);
    a.finalize();
    EXPECT_TRUE(a.ok()) << (a.violations().empty() ? "" : a.violations()[0].to_string());
}

TEST(Auditor, AomDeliveryContiguityPerEpoch) {
    Auditor a = make_auditor();
    a.on_aom_deliver(0, 10, 1, /*epoch=*/0, /*seq=*/1);
    a.on_aom_deliver(0, 11, 1, 0, 2);
    a.on_aom_deliver(0, 12, 1, 0, 4);  // gap within epoch 0
    a.on_aom_deliver(0, 20, 1, 1, 7);  // a new epoch seeds a fresh frontier
    a.on_aom_deliver(0, 21, 1, 1, 8);
    a.finalize();
    EXPECT_EQ(count(a, "seq_gap"), 1u);
    EXPECT_EQ(count(a, "seq_regression"), 0u);
}

TEST(Auditor, ViewConflictDetected) {
    Auditor a = make_auditor();
    a.on_view_decision(0, 10, 1, /*view=*/1, /*log_digest=*/500);
    a.on_view_decision(0, 11, 2, 1, 500);  // agrees
    a.on_view_decision(0, 12, 3, 1, 501);  // adopted a different merged log
    a.finalize();
    EXPECT_EQ(count(a, "view_conflict"), 1u);
}

TEST(Auditor, FinalizeIsIdempotent) {
    Auditor a = make_auditor();
    a.on_execute(0, 10, 1, 1, 111, false);
    a.on_execute(0, 11, 2, 1, 222, false);
    a.finalize();
    ASSERT_EQ(a.violations().size(), 1u);
    a.finalize();
    EXPECT_EQ(a.violations().size(), 1u);
}

TEST(Auditor, ReportEmitsOneViolationEventEach) {
    Auditor a = make_auditor();
    a.on_execute(0, 10, 1, 1, 111, false);
    a.on_execute(0, 11, 2, 1, 222, false);
    a.on_view_decision(0, 12, 1, 1, 1);
    a.on_view_decision(0, 13, 2, 1, 2);
    a.finalize();
    ASSERT_EQ(a.violations().size(), 2u);

    TraceSink sink;
    a.report(&sink);
    a.report(nullptr);  // null-safe
    ASSERT_EQ(sink.events().size(), 2u);
    for (const TraceEvent& e : sink.events()) {
        EXPECT_EQ(e.kind, EventKind::kViolation);
    }
    EXPECT_STREQ(sink.events()[0].label, "divergent_commit");
    EXPECT_STREQ(sink.events()[1].label, "view_conflict");
}

TEST(Auditor, ConfigureDiscardsPriorState) {
    Auditor a = make_auditor();
    a.on_execute(0, 10, 1, 1, 111, false);
    a.on_execute(0, 11, 2, 1, 222, false);
    a.finalize();
    ASSERT_FALSE(a.ok());
    a.configure(2);
    EXPECT_EQ(a.records(), 0u);
    EXPECT_FALSE(a.finalized());
    a.finalize();
    EXPECT_TRUE(a.ok());
}

TEST(Auditor, AomDeliverySequenceGapFlagged) {
    Auditor a = make_auditor();
    a.on_aom_deliver(0, 10, 1, /*epoch=*/0, /*seq=*/1);
    a.on_aom_deliver(0, 11, 1, 0, 2);
    a.on_aom_deliver(0, 12, 1, 0, 10);  // skipped 3..9
    a.finalize();
    EXPECT_EQ(count(a, "seq_gap"), 1u);
}

TEST(Auditor, AomResumeResetsTheDeliveryFrontier) {
    // A crash-recovered receiver rejoins mid-epoch: its next delivery is
    // wherever the live stream is, which would read as a giant seq_gap
    // without the resume marker (checkpoint-truncated logs never replay
    // the GC'd prefix).
    Auditor a = make_auditor();
    a.on_aom_deliver(0, 10, 1, 0, 1);
    a.on_aom_deliver(0, 11, 1, 0, 2);
    a.on_aom_resume(0, 12, 1);
    a.on_aom_deliver(0, 13, 1, 0, 40);  // rejoined far ahead: legitimate
    a.on_aom_deliver(0, 14, 1, 0, 41);
    a.finalize();
    EXPECT_TRUE(a.ok()) << (a.violations().empty() ? "" : a.violations()[0].to_string());
}

TEST(Auditor, AomResumeIsPerNode) {
    Auditor a = make_auditor();
    a.on_aom_deliver(0, 10, 1, 0, 1);
    a.on_aom_deliver(0, 10, 2, 0, 1);
    a.on_aom_resume(0, 11, 1);
    a.on_aom_deliver(0, 12, 1, 0, 40);  // node 1 resumed: fine
    a.on_aom_deliver(0, 12, 2, 0, 40);  // node 2 did not: gap
    a.finalize();
    EXPECT_EQ(count(a, "seq_gap"), 1u);
    EXPECT_EQ(a.violations()[0].node_a, 2u);
}

TEST(Auditor, OrphanPrepareFlaggedPastTheGraceWindow) {
    Auditor a = make_auditor();
    // txn 1: prepared at t=100, no phase-2 outcome ever -> leaked locks.
    a.on_txn(0, 100, 1, 7, 1, Auditor::TxnPhase::kPrepare, true);
    // txn 2: prepared and committed -> clean.
    a.on_txn(0, 100, 1, 7, 2, Auditor::TxnPhase::kPrepare, true);
    a.on_txn(0, 200, 1, 7, 2, Auditor::TxnPhase::kCommit, true);
    // txn 3: prepare vote was an abort (nothing staged) -> nothing leaks.
    a.on_txn(0, 100, 1, 7, 3, Auditor::TxnPhase::kPrepare, false);
    a.set_txn_orphan_grace(1'000, 10'000);
    a.finalize();
    EXPECT_EQ(count(a, "txn_orphan_prepare"), 1u);
    EXPECT_FALSE(a.ok());
}

TEST(Auditor, OrphanPrepareStillInFlightAtRunEndIsNotFlagged) {
    Auditor a = make_auditor();
    // Prepared just before the run stopped: the decision is legitimately
    // still in the network.
    a.on_txn(0, 9'500, 1, 7, 1, Auditor::TxnPhase::kPrepare, true);
    a.set_txn_orphan_grace(1'000, 10'000);
    a.finalize();
    EXPECT_EQ(count(a, "txn_orphan_prepare"), 0u);
}

TEST(Auditor, OrphanPrepareCheckDisabledByDefault) {
    Auditor a = make_auditor();
    a.on_txn(0, 100, 1, 7, 1, Auditor::TxnPhase::kPrepare, true);
    a.finalize();
    EXPECT_TRUE(a.ok());
}

TEST(Auditor, ExpectClientCommitsRecordsLivenessViolations) {
    Auditor a = make_auditor();
    a.finalize();
    ASSERT_TRUE(a.ok());
    a.expect_client_commits(/*client=*/3, /*completed=*/5, /*required=*/1, 1'000);
    EXPECT_TRUE(a.ok()) << "floor met: no violation";
    a.expect_client_commits(/*client=*/4, /*completed=*/0, /*required=*/1, 1'000);
    EXPECT_FALSE(a.ok());
    ASSERT_EQ(count(a, "liveness"), 1u);
    EXPECT_EQ(a.violations()[0].node_a, 4u);
}

}  // namespace
}  // namespace neo::obs
