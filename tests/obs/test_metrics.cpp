// Metrics registry: counters, gauges, dump-time collectors, and the
// deterministic sorted-JSON export the trace/metrics layer relies on.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "obs/metrics.hpp"

namespace neo::obs {
namespace {

TEST(Counter, IncSetValue) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.set(7);
    EXPECT_EQ(c.value(), 7u);
}

TEST(Registry, CounterHandleIsStableAcrossNewRegistrations) {
    Registry reg;
    Counter& a = reg.counter("a");
    a.inc(3);
    // Creating more counters must not invalidate the earlier handle.
    for (int i = 0; i < 100; ++i) reg.counter("bulk." + std::to_string(i));
    a.inc();
    EXPECT_EQ(reg.counter("a").value(), 4u);
    EXPECT_EQ(&reg.counter("a"), &a);
}

TEST(Registry, SetValueOverwrites) {
    Registry reg;
    reg.set_value("gauge", 1.5);
    reg.set_value("gauge", 2.5);
    auto snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("gauge"), 2.5);
}

TEST(Registry, CollectorsRunAtSnapshotInRegistrationOrder) {
    Registry reg;
    std::vector<int> order;
    reg.add_collector([&order](Registry& r) {
        order.push_back(1);
        r.set_value("first", 1);
    });
    reg.add_collector([&order](Registry& r) {
        order.push_back(2);
        r.set_value("second", r.snapshot().count("first") ? 2 : -1);
    });
    // The nested snapshot() inside the second collector must not recurse
    // into the collector list again.
    auto snap = reg.snapshot();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_DOUBLE_EQ(snap.at("first"), 1.0);
    EXPECT_DOUBLE_EQ(snap.at("second"), 2.0);

    // A second snapshot re-runs the collectors (point-in-time semantics).
    reg.snapshot();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(Registry, SnapshotMergesCountersAndValues) {
    Registry reg;
    reg.counter("rx.request").inc(12);
    reg.set_value("latency_us", 3.25);
    reg.set_value("rx.request", 999);  // counter wins on a name collision
    auto snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("rx.request"), 12.0);
    EXPECT_DOUBLE_EQ(snap.at("latency_us"), 3.25);
}

TEST(Registry, WriteJsonSortedAndDeterministic) {
    Registry reg;
    reg.counter("z.last").inc(2);
    reg.counter("a.first").inc(1);
    reg.set_value("m.gauge", 1.5);
    reg.set_value("m.whole", 3.0);

    std::ostringstream a, b;
    reg.write_json(a);
    reg.write_json(b);
    EXPECT_EQ(a.str(), b.str());

    const std::string out = a.str();
    // Keys appear lexicographically sorted within each section.
    EXPECT_LT(out.find("\"a.first\""), out.find("\"z.last\""));
    EXPECT_LT(out.find("\"m.gauge\""), out.find("\"m.whole\""));
    // Whole values print without a fraction, non-integers with one.
    EXPECT_NE(out.find("\"m.whole\": 3"), std::string::npos);
    EXPECT_NE(out.find("\"m.gauge\": 1.5"), std::string::npos);
    EXPECT_EQ(out.find("3.000000"), std::string::npos);
}

TEST(Registry, WriteJsonIsParseableShape) {
    Registry reg;
    reg.counter("net.packets_sent").inc(5);
    reg.set_value("run.throughput", 123456.5);
    std::ostringstream os;
    reg.write_json(os);
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '{');
    EXPECT_NE(out.find("\"counters\""), std::string::npos);
    EXPECT_NE(out.find("\"values\""), std::string::npos);
    // Balanced braces as a cheap structural check.
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < out.size(); ++i) {
        char c = out[i];
        if (in_string) {
            if (c == '\\') ++i;
            else if (c == '"') in_string = false;
            continue;
        }
        if (c == '"') in_string = true;
        else if (c == '{') ++depth;
        else if (c == '}') --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace neo::obs
