// Trace sink: event recording, drop-reason naming, and the JSONL / Chrome
// trace_event exports (format shape and determinism).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/trace.hpp"

namespace neo::obs {
namespace {

TEST(DropReasonNames, AllReasonsNamed) {
    EXPECT_STREQ(drop_reason_name(DropReason::kSenderDown), "sender_down");
    EXPECT_STREQ(drop_reason_name(DropReason::kPartitioned), "partitioned");
    EXPECT_STREQ(drop_reason_name(DropReason::kLinkLoss), "link_loss");
    EXPECT_STREQ(drop_reason_name(DropReason::kTampered), "tampered");
    EXPECT_STREQ(drop_reason_name(DropReason::kReceiverDown), "receiver_down");
    EXPECT_STREQ(drop_reason_name(DropReason::kNoRoute), "no_route");
}

TEST(EventKindNames, AllKindsNamed) {
    EXPECT_STREQ(event_kind_name(EventKind::kPacketSend), "packet_send");
    EXPECT_STREQ(event_kind_name(EventKind::kPacketDeliver), "packet_deliver");
    EXPECT_STREQ(event_kind_name(EventKind::kPacketDrop), "packet_drop");
    EXPECT_STREQ(event_kind_name(EventKind::kSeqStamp), "seq_stamp");
    EXPECT_STREQ(event_kind_name(EventKind::kPhase), "phase");
    EXPECT_STREQ(event_kind_name(EventKind::kTimerArm), "timer_arm");
    EXPECT_STREQ(event_kind_name(EventKind::kTimerFire), "timer_fire");
    EXPECT_STREQ(event_kind_name(EventKind::kTimerCancel), "timer_cancel");
    EXPECT_STREQ(event_kind_name(EventKind::kBatch), "batch");
    EXPECT_STREQ(event_kind_name(EventKind::kCrypto), "crypto");
    EXPECT_STREQ(event_kind_name(EventKind::kCpuSpan), "cpu_span");
}

TEST(TraceSink, RecordsEventsInOrderWithPayloads) {
    TraceSink sink;
    sink.packet_send(100, /*from=*/1, /*to=*/2, /*bytes=*/64);
    sink.packet_deliver(1100, /*from=*/1, /*to=*/2, /*bytes=*/64);
    sink.packet_drop(1200, /*from=*/2, /*to=*/3, /*bytes=*/52, DropReason::kLinkLoss);
    sink.seq_stamp(1300, /*sequencer=*/200, /*group=*/7, /*seq=*/41, /*with_signature=*/true);
    sink.phase(1400, 3, "commit", /*a=*/5, /*b=*/0);
    sink.cpu_span(1500, 3, "execute", /*dur=*/250);
    ASSERT_EQ(sink.size(), 6u);

    const auto& ev = sink.events();
    EXPECT_EQ(ev[0].kind, EventKind::kPacketSend);
    EXPECT_EQ(ev[0].node, 1u);  // sender's track
    EXPECT_EQ(ev[0].a, 2u);
    EXPECT_EQ(ev[0].b, 64u);

    EXPECT_EQ(ev[1].kind, EventKind::kPacketDeliver);
    EXPECT_EQ(ev[1].node, 2u);  // receiver's track
    EXPECT_EQ(ev[1].a, 1u);

    EXPECT_EQ(ev[2].kind, EventKind::kPacketDrop);
    EXPECT_STREQ(ev[2].label, "link_loss");
    EXPECT_EQ(ev[2].c, static_cast<std::uint64_t>(DropReason::kLinkLoss));

    EXPECT_EQ(ev[3].kind, EventKind::kSeqStamp);
    EXPECT_EQ(ev[3].a, 41u);
    EXPECT_EQ(ev[3].b, 1u);
    EXPECT_EQ(ev[3].c, 7u);

    EXPECT_EQ(ev[4].kind, EventKind::kPhase);
    EXPECT_STREQ(ev[4].label, "commit");

    EXPECT_EQ(ev[5].kind, EventKind::kCpuSpan);
    EXPECT_EQ(ev[5].dur, 250);

    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, JsonlOneObjectPerLineInRecordOrder) {
    TraceSink sink;
    sink.packet_send(2500, 1, 2, 64);
    sink.packet_drop(1000, 2, 3, 52, DropReason::kPartitioned);
    sink.timer_arm(3000, 4, /*id=*/9, "retry", /*delay=*/5000);

    std::ostringstream os;
    sink.write_jsonl(os);
    const std::string out = os.str();

    std::vector<std::string> lines;
    std::istringstream is(out);
    for (std::string line; std::getline(is, line);) lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);

    // JSONL preserves recording order even when timestamps are out of order.
    EXPECT_EQ(lines[0],
              "{\"t\":2500,\"node\":1,\"ev\":\"packet_send\",\"to\":2,\"bytes\":64}");
    EXPECT_EQ(lines[1],
              "{\"t\":1000,\"node\":2,\"ev\":\"packet_drop\",\"to\":3,\"bytes\":52,"
              "\"reason\":\"partitioned\"}");
    EXPECT_EQ(lines[2],
              "{\"t\":3000,\"node\":4,\"ev\":\"timer_arm\",\"label\":\"retry\","
              "\"timer\":9,\"delay_ns\":5000}");
}

TEST(TraceSink, ChromeTraceShapeSortingAndTrackNames) {
    TraceSink sink;
    sink.set_node_name(1, "replica 1");
    sink.set_node_name(200, "sequencer 200");
    sink.packet_send(2000, 1, 2, 64);
    sink.phase(1000, 1, "commit", 3, 0);  // earlier timestamp recorded later
    sink.cpu_span(1500, 200, "stamp", 750);

    std::ostringstream os;
    sink.write_chrome_trace(os);
    const std::string out = os.str();

    // Envelope.
    EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(out.find("],\"displayTimeUnit\":\"ns\"}"), std::string::npos);

    // Process + per-node thread_name metadata rows.
    EXPECT_NE(out.find("\"args\":{\"name\":\"neobft-sim\"}"), std::string::npos);
    EXPECT_NE(out.find("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
                       "\"args\":{\"name\":\"replica 1\"}}"),
              std::string::npos);
    EXPECT_NE(out.find("\"tid\":200,\"args\":{\"name\":\"sequencer 200\"}"),
              std::string::npos);

    // Events sorted by timestamp: the phase at t=1000 precedes the cpu span
    // at t=1500, which precedes the send at t=2000. Virtual-time ns become
    // fractional-microsecond "ts" values.
    auto commit_pos = out.find("\"name\":\"commit\"");
    auto span_pos = out.find("\"name\":\"stamp\"");
    auto send_pos = out.find("\"name\":\"packet_send\"");
    ASSERT_NE(commit_pos, std::string::npos);
    ASSERT_NE(span_pos, std::string::npos);
    ASSERT_NE(send_pos, std::string::npos);
    EXPECT_LT(commit_pos, span_pos);
    EXPECT_LT(span_pos, send_pos);
    EXPECT_NE(out.find("\"ts\":1.000"), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"dur\":0.750"), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
}

TEST(TraceSink, ChromeTraceStableSortPreservesRecordOrderAtEqualTimestamps) {
    TraceSink sink;
    sink.phase(1000, 1, "first", 0, 0);
    sink.phase(1000, 1, "second", 0, 0);
    std::ostringstream os;
    sink.write_chrome_trace(os);
    const std::string out = os.str();
    EXPECT_LT(out.find("\"name\":\"first\""), out.find("\"name\":\"second\""));
}

TEST(TraceSink, ExportsAreDeterministic) {
    auto record = [](TraceSink& sink) {
        sink.set_node_name(1, "replica 1");
        sink.packet_send(10, 1, 2, 64);
        sink.packet_deliver(1010, 1, 2, 64);
        sink.batch(1020, 2, "prepare", 4);
        sink.crypto_cost(1030, 2, "sync", 900);
    };
    TraceSink a, b;
    record(a);
    record(b);
    std::ostringstream aj, bj, ac, bc;
    a.write_jsonl(aj);
    b.write_jsonl(bj);
    a.write_chrome_trace(ac);
    b.write_chrome_trace(bc);
    EXPECT_EQ(aj.str(), bj.str());
    EXPECT_EQ(ac.str(), bc.str());
}

}  // namespace
}  // namespace neo::obs
