// Scenario engine unit tests: the declarative library's shapes (targets,
// ordering, expectations), seed-determinism of the fuzzer, and the
// apply() dispatch semantics — lifecycle faults reach the adapter,
// unsupported crashes degrade to fail-silent network windows, loss bursts
// restore the baseline drop rate, sequencer faults are forwarded verbatim.
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace neo::scenario {
namespace {

const std::vector<NodeId> kReplicas = {1, 2, 3, 4};
constexpr sim::Time kHorizon = 1'000'000;  // 1ms virtual

/// Adapter over a real (empty) simulator+network that records every
/// lifecycle / sequencer hook invocation instead of running a protocol.
struct RecordingAdapter : Adapter {
    sim::Simulator sim;
    sim::Network net{sim, 99};
    bool lifecycle_supported = true;
    std::vector<std::string> calls;
    std::vector<SeqFault> seq_faults;

    sim::Simulator& simulator() override { return sim; }
    sim::Network& network() override { return net; }
    std::vector<NodeId> replica_ids() const override { return kReplicas; }

    bool crash(NodeId n) override { return record("crash", n); }
    bool recover(NodeId n) override { return record("recover", n); }
    bool set_equivocate(NodeId n, bool on) override {
        return record(on ? "equivocate" : "honest", n);
    }
    bool sequencer_fault(const SeqFault& f) override {
        seq_faults.push_back(f);
        return true;
    }

    bool record(const std::string& what, NodeId n) {
        if (!lifecycle_supported) return false;
        calls.push_back(what + ":" + std::to_string(n));
        return true;
    }
};

bool targets_within(const Scenario& sc, const std::vector<NodeId>& replicas) {
    for (const FaultEvent& e : sc.events) {
        for (NodeId t : e.targets) {
            if (std::find(replicas.begin(), replicas.end(), t) == replicas.end()) return false;
        }
    }
    return true;
}

TEST(ScenarioLibrary, StandardSuiteIsWellFormed) {
    std::vector<Scenario> suite = standard_suite(kReplicas, kHorizon);
    ASSERT_GE(suite.size(), 9u);

    std::set<std::string> names;
    for (const Scenario& sc : suite) {
        EXPECT_TRUE(names.insert(sc.name).second) << "duplicate name " << sc.name;
        EXPECT_FALSE(sc.events.empty()) << sc.name;
        EXPECT_TRUE(sc.violations_required) << sc.name;
        EXPECT_GE(sc.min_commits_per_client, 1u) << sc.name;
        EXPECT_TRUE(targets_within(sc, kReplicas)) << sc.name;
        for (const FaultEvent& e : sc.events) {
            EXPECT_LT(e.at, kHorizon) << sc.name << " schedules past the horizon";
        }
    }
}

TEST(ScenarioLibrary, NodeFaultsNeverTargetTheViewZeroPrimary) {
    // Curated single-victim scenarios must pick a backup: crashing the
    // view-0 primary tests view change (covered elsewhere), not the
    // recovery lifecycle these scenarios are about.
    for (const Scenario& sc : standard_suite(kReplicas, kHorizon)) {
        for (const FaultEvent& e : sc.events) {
            if (e.kind == FaultKind::kCrash || e.kind == FaultKind::kEquivocate ||
                e.kind == FaultKind::kSilence) {
                for (NodeId t : e.targets) EXPECT_NE(t, kReplicas.front()) << sc.name;
            }
        }
    }
}

TEST(ScenarioLibrary, EquivocationExpectsTheDetectorToFire) {
    Scenario sc = equivocating_replica(kReplicas, kHorizon / 4);
    ASSERT_EQ(sc.expect_violations.size(), 1u);
    EXPECT_EQ(sc.expect_violations[0], "divergent_commit");
}

TEST(ScenarioLibrary, FaultKindNamesAreDistinct) {
    std::set<std::string> names;
    for (int k = 0; k <= static_cast<int>(FaultKind::kSeqEquivocate); ++k) {
        const char* n = fault_kind_name(static_cast<FaultKind>(k));
        ASSERT_NE(n, nullptr);
        EXPECT_TRUE(names.insert(n).second) << "duplicate fault name " << n;
    }
}

TEST(ScenarioFuzz, DeterministicPerSeed) {
    for (std::uint64_t seed : {0ull, 1ull, 7ull, 42ull, 12345ull}) {
        Scenario a = fuzz(seed, kReplicas, kHorizon);
        Scenario b = fuzz(seed, kReplicas, kHorizon);
        ASSERT_EQ(a.events.size(), b.events.size()) << "seed " << seed;
        for (std::size_t i = 0; i < a.events.size(); ++i) {
            EXPECT_EQ(a.events[i].at, b.events[i].at);
            EXPECT_EQ(a.events[i].kind, b.events[i].kind);
            EXPECT_EQ(a.events[i].targets, b.events[i].targets);
            EXPECT_EQ(a.events[i].duration, b.events[i].duration);
            EXPECT_EQ(a.events[i].rate, b.events[i].rate);
            EXPECT_EQ(a.events[i].mod, b.events[i].mod);
        }
    }
}

TEST(ScenarioFuzz, BoundedAndSorted) {
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        Scenario sc = fuzz(seed, kReplicas, kHorizon);
        EXPECT_FALSE(sc.violations_required) << "fuzz expectations must be allowed, not required";
        EXPECT_FALSE(sc.events.empty());
        EXPECT_TRUE(targets_within(sc, kReplicas));
        for (std::size_t i = 0; i < sc.events.size(); ++i) {
            EXPECT_LT(sc.events[i].at, kHorizon);
            if (i > 0) {
                EXPECT_GE(sc.events[i].at, sc.events[i - 1].at) << "unsorted seed " << seed;
            }
        }
    }
}

TEST(ScenarioFuzz, SeedsProduceDifferentCompositions) {
    std::set<std::string> shapes;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        Scenario sc = fuzz(seed, kReplicas, kHorizon);
        std::string shape;
        for (const FaultEvent& e : sc.events) {
            shape += std::string(fault_kind_name(e.kind)) + "@" + std::to_string(e.at) + ";";
        }
        shapes.insert(shape);
    }
    EXPECT_GT(shapes.size(), 8u) << "fuzzer barely varies across seeds";
}

TEST(ScenarioApply, LifecycleFaultsReachTheAdapter) {
    RecordingAdapter ad;
    Scenario sc = crash_recover(kReplicas, kHorizon / 4, kHorizon);
    apply(sc, ad);
    ad.sim.run_until(kHorizon);

    ASSERT_EQ(ad.calls.size(), 2u);
    EXPECT_EQ(ad.calls[0], "crash:" + std::to_string(kReplicas.back()));
    EXPECT_EQ(ad.calls[1], "recover:" + std::to_string(kReplicas.back()));
    EXPECT_FALSE(ad.net.is_down(kReplicas.back())) << "supported crash must not touch the net";
}

TEST(ScenarioApply, UnsupportedCrashDegradesToFailSilentWindow) {
    RecordingAdapter ad;
    ad.lifecycle_supported = false;
    Scenario sc = crash_recover(kReplicas, kHorizon / 4, kHorizon);
    ASSERT_GE(sc.events.size(), 2u);
    const sim::Time mid = (sc.events[0].at + sc.events[1].at) / 2;

    bool down_mid_window = false;
    apply(sc, ad);
    ad.sim.at_global(mid, [&] { down_mid_window = ad.net.is_down(kReplicas.back()); });
    ad.sim.run_until(kHorizon);

    EXPECT_TRUE(down_mid_window);
    EXPECT_FALSE(ad.net.is_down(kReplicas.back())) << "recover must bring the node back";
    EXPECT_TRUE(ad.calls.empty());
}

TEST(ScenarioApply, LossBurstRestoresBaselineDropRate) {
    RecordingAdapter ad;
    Scenario sc = loss_bursts(kHorizon / 8, kHorizon / 4, kHorizon / 16, 0.5, 2);
    ASSERT_FALSE(sc.events.empty());
    const sim::Time mid = sc.events[0].at + sc.events[0].duration / 2;

    double rate_mid_burst = -1.0;
    apply(sc, ad);
    ad.sim.at_global(mid, [&] { rate_mid_burst = ad.net.global_drop_rate(); });
    ad.sim.run_until(kHorizon);

    EXPECT_DOUBLE_EQ(rate_mid_burst, 0.5);
    EXPECT_DOUBLE_EQ(ad.net.global_drop_rate(), 0.0) << "burst never restored the baseline";
}

TEST(ScenarioApply, SequencerFaultsForwardedVerbatim) {
    RecordingAdapter ad;
    Scenario sc = seq_skips(kHorizon / 8, 16);
    apply(sc, ad);
    ad.sim.run_until(kHorizon);

    ASSERT_FALSE(ad.seq_faults.empty());
    EXPECT_EQ(ad.seq_faults[0].kind, FaultKind::kSeqDrop);
    EXPECT_EQ(ad.seq_faults[0].mod, 16u);
    EXPECT_TRUE(ad.seq_faults[0].on);
}

}  // namespace
}  // namespace neo::scenario
