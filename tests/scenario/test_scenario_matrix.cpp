// Byzantine scenario matrix: every canonical fault scenario runs over
// every protocol in the evaluation, with the auditor checking safety
// (expected violations must fire, anything else fails) and the liveness
// floor on each cell — plus the engine's determinism contract: same-seed
// scenario outcomes are byte-identical across --sim-threads {1, 8}.
//
// tsan label: scenario faults mutate cross-node shared state (network
// blocks, node-down flags, sequencer fault knobs) from global events
// between PDES windows while replicas run on partition workers — exactly
// the cross-thread pattern the ThreadSanitizer job exists to check.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "harness/harness.hpp"
#include "harness/scenario_run.hpp"
#include "scenario/scenario.hpp"

namespace neo::bench {
namespace {

constexpr std::uint64_t kSeed = 777;
constexpr sim::Time kHorizon = 20 * sim::kMillisecond;

std::unique_ptr<Deployment> make_proto(const std::string& proto, unsigned sim_threads = 1) {
    if (proto == "neo_hm" || proto == "neo_pk") {
        NeoParams p;
        p.variant = proto == "neo_pk" ? NeoVariant::kPk : NeoVariant::kHm;
        p.n_clients = 4;
        p.seed = kSeed;
        p.sim_threads = sim_threads;
        p.byz_sequencer = true;
        p.checkpoint_interval = 128;
        return make_neobft(p);
    }
    if (proto == "zyzzyva") {
        ZyzzyvaParams p;
        p.n_clients = 4;
        p.seed = kSeed;
        p.sim_threads = sim_threads;
        return make_zyzzyva(p);
    }
    CommonParams p;
    p.n_clients = 4;
    p.seed = kSeed;
    p.sim_threads = sim_threads;
    if (proto == "pbft") return make_pbft(p);
    if (proto == "hotstuff") return make_hotstuff(p);
    return make_minbft(p);
}

scenario::Scenario scenario_by_name(const std::string& name,
                                    const std::vector<NodeId>& replicas) {
    for (auto& sc : scenario::standard_suite(replicas, kHorizon)) {
        if (sc.name == name) return sc;
    }
    ADD_FAILURE() << "unknown scenario " << name;
    return {};
}

std::vector<std::string> scenario_names() {
    std::vector<std::string> names;
    for (const auto& sc : scenario::standard_suite({1, 2, 3, 4}, kHorizon)) {
        names.push_back(sc.name);
    }
    return names;
}

using Cell = std::tuple<std::string, std::string>;  // (protocol, scenario)

class ScenarioMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(ScenarioMatrix, PassesSafetyAndLiveness) {
    const auto& [proto, name] = GetParam();
    auto d = make_proto(proto);
    scenario::Scenario sc = scenario_by_name(name, d->replica_ids());
    ScenarioOutcome out = run_scenario(*d, sc, echo_ops(64), kHorizon);
    EXPECT_TRUE(out.ok) << proto << " " << out.to_string();
}

std::vector<Cell> all_cells() {
    std::vector<Cell> cells;
    for (const std::string& proto :
         {"neo_hm", "neo_pk", "pbft", "zyzzyva", "hotstuff", "minbft"}) {
        for (const std::string& name : scenario_names()) cells.push_back({proto, name});
    }
    return cells;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ScenarioMatrix, ::testing::ValuesIn(all_cells()),
                         [](const ::testing::TestParamInfo<Cell>& info) {
                             return std::get<0>(info.param) + "_" + std::get<1>(info.param);
                         });

TEST(ScenarioDeterminism, OutcomeByteIdenticalAcrossThreadCounts) {
    // The engine schedules every fault as a global event, so a scenario
    // run — faults, recovery, auditor stream and all — must be a pure
    // function of (seed, scenario), independent of worker threads.
    for (const std::string& proto : {"neo_hm", "neo_pk"}) {
        for (const std::string& name : {"crash_recover", "seq_equivocate"}) {
            std::string ref;
            std::size_t ref_records = 0;
            for (unsigned threads : {1u, 8u}) {
                auto d = make_proto(proto, threads);
                scenario::Scenario sc = scenario_by_name(name, d->replica_ids());
                ScenarioOutcome out = run_scenario(*d, sc, echo_ops(64), kHorizon);
                if (threads == 1) {
                    ref = out.to_string();
                    ref_records = d->auditor().records();
                } else {
                    EXPECT_EQ(out.to_string(), ref) << proto << " threads=" << threads;
                    EXPECT_EQ(d->auditor().records(), ref_records) << proto;
                }
            }
        }
    }
}

TEST(ScenarioDeterminism, FuzzCompositionsStableAcrossThreadCounts) {
    for (std::uint64_t seed : {3ull, 11ull}) {
        std::string ref;
        for (unsigned threads : {1u, 8u}) {
            NeoParams p;
            p.n_clients = 4;
            p.seed = seed;
            p.sim_threads = threads;
            p.byz_sequencer = true;
            p.checkpoint_interval = 128;
            auto d = make_neobft(p);
            scenario::Scenario sc = scenario::fuzz(seed, d->replica_ids(), kHorizon);
            ScenarioOutcome out = run_scenario(*d, sc, echo_ops(64), kHorizon);
            EXPECT_TRUE(out.ok) << out.to_string();
            if (threads == 1) {
                ref = out.to_string();
            } else {
                EXPECT_EQ(out.to_string(), ref) << "fuzz seed " << seed;
            }
        }
    }
}

}  // namespace
}  // namespace neo::bench
