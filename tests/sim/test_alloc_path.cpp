// Allocation discipline of the packet hot path, measured with the
// operator-new interposer in tests/support/alloc_hook.cpp (linked into this
// binary only).
//
// The contracts under test are the point of the zero-copy rework:
//  - a multicast allocates its payload exactly once, however many
//    receivers it fans out to (deliveries bump a refcount, not memcpy);
//  - packet-delivery and timer-fire closures fit EventFn's inline buffer,
//    so pushing them through the event queue never heap-allocates.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/network.hpp"
#include "sim/processing_node.hpp"
#include "support/alloc_hook.hpp"

using namespace neo;
using namespace neo::sim;

namespace {

constexpr std::size_t kPayload = 64 * 1024;

class CountingSink : public Node {
  public:
    void on_packet(NodeId, const Packet& pkt) override {
        ++delivered;
        last_size = pkt.size();
    }
    std::uint64_t delivered = 0;
    std::size_t last_size = 0;
};

/// ProcessingNode sink: arrivals go through the queue + drain machinery.
class QueueSink : public ProcessingNode {
  public:
    std::uint64_t handled = 0;

  protected:
    void handle(NodeId, BytesView data) override {
        handled += data.empty() ? 0 : 1;
    }
};

/// Payload-sized allocations for an n-way multicast, delivery included.
template <typename Sink>
std::uint64_t multicast_payload_allocs(int n, std::uint64_t* delivered_out = nullptr) {
    Simulator sim;
    Network net(sim, /*seed=*/7);
    LinkConfig link;
    link.jitter = 0;
    net.set_default_link(link);
    CountingSink source;
    net.add_node(source, 1);
    std::vector<Sink> sinks(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        net.add_node(sinks[static_cast<std::size_t>(i)], static_cast<NodeId>(100 + i));
    }

    test_alloc::set_threshold(kPayload);
    test_alloc::Stats before = test_alloc::snapshot();
    Bytes data(kPayload, 0x5a);  // the one payload-sized allocation
    Packet pkt(std::move(data));
    for (int i = 0; i < n; ++i) net.send(1, static_cast<NodeId>(100 + i), pkt);
    pkt = Packet();  // deliveries alone keep the buffer alive
    sim.run();
    test_alloc::Stats after = test_alloc::snapshot();

    if (delivered_out != nullptr) {
        *delivered_out = 0;
        for (const auto& s : sinks) {
            if constexpr (std::is_same_v<Sink, CountingSink>) {
                *delivered_out += s.delivered;
            } else {
                *delivered_out += s.handled;
            }
        }
    }
    return after.over_threshold - before.over_threshold;
}

// Escape hatch so the compiler cannot elide a measured allocation
// (__builtin_operator_new elision is legal even with a replaced operator).
volatile const void* g_escape_sink = nullptr;

TEST(AllocPath, HookIsLinkedIntoThisBinary) {
    ASSERT_TRUE(test_alloc::hook_active());
    test_alloc::Stats before = test_alloc::snapshot();
    // Direct operator-new call: new-expressions may legally be elided even
    // with a replaced operator, explicit calls may not.
    void* p = ::operator new(1024);
    g_escape_sink = p;
    test_alloc::Stats after = test_alloc::snapshot();
    ::operator delete(p);
    EXPECT_EQ(after.count, before.count + 1);
    EXPECT_GE(after.bytes - before.bytes, 1024u);
}

TEST(AllocPath, MulticastAllocatesPayloadOnceRegardlessOfFanout) {
    std::uint64_t delivered8 = 0, delivered64 = 0;
    std::uint64_t allocs8 = multicast_payload_allocs<CountingSink>(8, &delivered8);
    std::uint64_t allocs64 = multicast_payload_allocs<CountingSink>(64, &delivered64);
    EXPECT_EQ(delivered8, 8u);
    EXPECT_EQ(delivered64, 64u);
    // O(1) in the fan-out: identical payload-allocation counts at 8 and 64
    // receivers, and exactly the one Bytes buffer the test itself built.
    EXPECT_EQ(allocs8, allocs64);
    EXPECT_EQ(allocs8, 1u);
}

TEST(AllocPath, ProcessingNodeQueueSharesTheArrivalBuffer) {
    // Same contract through ProcessingNode's arrival queue + drain + handle.
    std::uint64_t handled8 = 0, handled64 = 0;
    std::uint64_t allocs8 = multicast_payload_allocs<QueueSink>(8, &handled8);
    std::uint64_t allocs64 = multicast_payload_allocs<QueueSink>(64, &handled64);
    EXPECT_EQ(handled8, 8u);
    EXPECT_EQ(handled64, 64u);
    EXPECT_EQ(allocs8, allocs64);
    EXPECT_EQ(allocs8, 1u);
}

TEST(AllocPath, InlineEventFnNeverTouchesTheHeap) {
    Simulator sim;
    // Warm the event heap so vector growth is out of the measured region.
    for (int i = 0; i < 4; ++i) sim.at(0, [] {});
    sim.run();

    std::uint64_t fired = 0;
    std::array<std::uint8_t, 40> blob{};  // delivery-closure-sized capture
    test_alloc::Stats before = test_alloc::snapshot();
    sim.at(1, [&fired, blob] { fired += blob.size(); });
    sim.run();
    test_alloc::Stats after = test_alloc::snapshot();
    EXPECT_EQ(fired, 40u);
    EXPECT_EQ(after.count, before.count);  // zero allocations, of any size
}

TEST(AllocPath, OversizedEventFnFallsBackToHeapCorrectly) {
    // Closures past the inline budget still work (one boxed allocation).
    Simulator sim;
    for (int i = 0; i < 4; ++i) sim.at(0, [] {});
    sim.run();

    std::uint64_t sum = 0;
    std::array<std::uint8_t, 200> big{};
    big[0] = 7;
    test_alloc::Stats before = test_alloc::snapshot();
    sim.at(1, [&sum, big] { sum += big[0]; });
    sim.run();
    test_alloc::Stats after = test_alloc::snapshot();
    EXPECT_EQ(sum, 7u);
    EXPECT_GT(after.count, before.count);
}

}  // namespace
