#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "common/codec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace neo::sim {
namespace {

class RecorderNode : public Node {
  public:
    struct Received {
        NodeId from;
        Bytes data;
        Time at;
    };
    void on_packet(NodeId from, const Packet& pkt) override {
        BytesView data = pkt.view();
        received.push_back({from, Bytes(data.begin(), data.end()), sim().now()});
    }
    std::vector<Received> received;
};

class NetworkTest : public ::testing::Test {
  protected:
    NetworkTest() : net(sim, /*seed=*/1) {
        LinkConfig cfg;
        cfg.latency = 1000;
        cfg.jitter = 0;
        cfg.ns_per_byte = 0.0;
        net.set_default_link(cfg);
        net.add_node(a, 1);
        net.add_node(b, 2);
        net.add_node(c, 3);
    }

    Simulator sim;
    Network net;
    RecorderNode a, b, c;
};

TEST_F(NetworkTest, DeliversWithLinkLatency) {
    net.send(1, 2, to_bytes("hi"));
    sim.run();
    ASSERT_EQ(b.received.size(), 1u);
    EXPECT_EQ(b.received[0].from, 1u);
    EXPECT_EQ(to_string(b.received[0].data), "hi");
    EXPECT_EQ(b.received[0].at, 1000);
}

TEST_F(NetworkTest, SerializationDelayScalesWithSize) {
    LinkConfig cfg = net.default_link();
    cfg.ns_per_byte = 1.0;
    net.set_default_link(cfg);
    net.send(1, 2, Bytes(500, 0));
    sim.run();
    ASSERT_EQ(b.received.size(), 1u);
    EXPECT_EQ(b.received[0].at, 1500);
}

TEST_F(NetworkTest, JitterBoundsDeliveryTime) {
    LinkConfig cfg = net.default_link();
    cfg.jitter = 200;
    net.set_default_link(cfg);
    for (int i = 0; i < 100; ++i) net.send(1, 2, to_bytes("x"));
    sim.run();
    ASSERT_EQ(b.received.size(), 100u);
    for (const auto& r : b.received) {
        EXPECT_GE(r.at, 1000);
        EXPECT_LT(r.at, 1200);
    }
}

TEST_F(NetworkTest, PerLinkOverride) {
    LinkConfig slow;
    slow.latency = 9000;
    slow.jitter = 0;
    slow.ns_per_byte = 0;
    net.set_link(1, 3, slow);
    net.send(1, 2, to_bytes("fast"));
    net.send(1, 3, to_bytes("slow"));
    sim.run();
    ASSERT_EQ(b.received.size(), 1u);
    ASSERT_EQ(c.received.size(), 1u);
    EXPECT_EQ(b.received[0].at, 1000);
    EXPECT_EQ(c.received[0].at, 9000);
}

TEST_F(NetworkTest, DropRateLosesPackets) {
    LinkConfig cfg = net.default_link();
    cfg.drop_rate = 0.5;
    net.set_default_link(cfg);
    for (int i = 0; i < 1000; ++i) net.send(1, 2, to_bytes("x"));
    sim.run();
    EXPECT_GT(b.received.size(), 350u);
    EXPECT_LT(b.received.size(), 650u);
    EXPECT_EQ(net.packets_dropped() + net.packets_delivered(), 1000u);
}

TEST_F(NetworkTest, GlobalDropRateAddsToLinkRate) {
    net.set_global_drop_rate(1.0);
    net.send(1, 2, to_bytes("x"));
    sim.run();
    EXPECT_TRUE(b.received.empty());
    EXPECT_EQ(net.packets_dropped(), 1u);
}

TEST_F(NetworkTest, BlockedLinkDeliversNothing) {
    net.block(1, 2);
    net.send(1, 2, to_bytes("x"));
    net.send(2, 1, to_bytes("y"));  // reverse direction unaffected
    sim.run();
    EXPECT_TRUE(b.received.empty());
    ASSERT_EQ(a.received.size(), 1u);
    net.unblock(1, 2);
    net.send(1, 2, to_bytes("x"));
    sim.run();
    EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetworkTest, DownNodeNeitherSendsNorReceives) {
    net.set_node_down(2, true);
    net.send(1, 2, to_bytes("to-down"));
    net.send(2, 1, to_bytes("from-down"));
    sim.run();
    EXPECT_TRUE(b.received.empty());
    EXPECT_TRUE(a.received.empty());

    net.set_node_down(2, false);
    net.send(1, 2, to_bytes("back"));
    sim.run();
    EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetworkTest, NodeGoingDownMidFlightDropsDelivery) {
    net.send(1, 2, to_bytes("x"));
    sim.run_until(500);
    net.set_node_down(2, true);
    sim.run();
    EXPECT_TRUE(b.received.empty());
}

TEST_F(NetworkTest, TamperHookCanMutate) {
    net.set_tamper([](NodeId, NodeId, Bytes& data) {
        if (!data.empty()) data[0] ^= 0xff;
        return TamperAction::kDeliver;
    });
    net.send(1, 2, Bytes{0x00, 0x42});
    sim.run();
    ASSERT_EQ(b.received.size(), 1u);
    EXPECT_EQ(b.received[0].data[0], 0xff);
    EXPECT_EQ(b.received[0].data[1], 0x42);
}

TEST_F(NetworkTest, TamperHookCanDrop) {
    net.set_tamper([](NodeId from, NodeId, Bytes&) {
        return from == 1 ? TamperAction::kDrop : TamperAction::kDeliver;
    });
    net.send(1, 2, to_bytes("x"));
    net.send(3, 2, to_bytes("y"));
    sim.run();
    ASSERT_EQ(b.received.size(), 1u);
    EXPECT_EQ(b.received[0].from, 3u);
}

TEST_F(NetworkTest, SendAtDefersDeparture) {
    sim.at(0, [&] { net.send_at(5000, 1, 2, to_bytes("later")); });
    sim.run();
    ASSERT_EQ(b.received.size(), 1u);
    EXPECT_EQ(b.received[0].at, 6000);
}

TEST_F(NetworkTest, CountersTrackTraffic) {
    net.send(1, 2, Bytes(10, 0));
    net.send(1, 3, Bytes(20, 0));
    sim.run();
    EXPECT_EQ(net.packets_sent(), 2u);
    EXPECT_EQ(net.packets_delivered(), 2u);
    EXPECT_EQ(net.bytes_sent(), 30u);
    EXPECT_EQ(net.delivered_to(2), 1u);
    EXPECT_EQ(net.delivered_to(3), 1u);
    net.reset_counters();
    EXPECT_EQ(net.packets_sent(), 0u);
    EXPECT_EQ(net.delivered_to(2), 0u);
}

TEST_F(NetworkTest, DeterministicAcrossRuns) {
    // Two identically seeded networks produce identical delivery schedules.
    Simulator sim2;
    Network net2(sim2, /*seed=*/1);
    LinkConfig cfg;
    cfg.latency = 1000;
    cfg.jitter = 300;
    net2.set_default_link(cfg);
    cfg.ns_per_byte = 0;
    RecorderNode a2, b2;
    net2.add_node(a2, 1);
    net2.add_node(b2, 2);

    LinkConfig cfg1 = cfg;
    net.set_default_link(cfg1);
    for (int i = 0; i < 50; ++i) {
        net.send(1, 2, to_bytes("m"));
        net2.send(1, 2, to_bytes("m"));
    }
    sim.run();
    sim2.run();
    ASSERT_EQ(b.received.size(), b2.received.size());
    for (std::size_t i = 0; i < b.received.size(); ++i) {
        EXPECT_EQ(b.received[i].at, b2.received[i].at);
    }
}

TEST_F(NetworkTest, SendToUnknownNodeCountsDrop) {
    net.send(1, 99, to_bytes("void"));
    sim.run();
    EXPECT_EQ(net.packets_dropped(), 1u);
    EXPECT_EQ(net.dropped_for(obs::DropReason::kNoRoute), 1u);
}

TEST_F(NetworkTest, DropReasonAttribution) {
    // Link loss.
    net.set_global_drop_rate(1.0);
    net.send(1, 2, to_bytes("x"));
    sim.run();
    EXPECT_EQ(net.dropped_for(obs::DropReason::kLinkLoss), 1u);
    net.set_global_drop_rate(0.0);

    // Partition.
    net.block(1, 2);
    net.send(1, 2, to_bytes("x"));
    sim.run();
    EXPECT_EQ(net.dropped_for(obs::DropReason::kPartitioned), 1u);
    net.unblock(1, 2);

    // Down sender, down receiver (at send time the sender check wins; the
    // receiver is only consulted at arrival).
    net.set_node_down(2, true);
    net.send(2, 1, to_bytes("x"));
    net.send(1, 2, to_bytes("x"));
    sim.run();
    EXPECT_EQ(net.dropped_for(obs::DropReason::kSenderDown), 1u);
    EXPECT_EQ(net.dropped_for(obs::DropReason::kReceiverDown), 1u);
    net.set_node_down(2, false);

    // Tamper hook.
    net.set_tamper([](NodeId, NodeId, Bytes&) { return TamperAction::kDrop; });
    net.send(1, 2, to_bytes("x"));
    sim.run();
    EXPECT_EQ(net.dropped_for(obs::DropReason::kTampered), 1u);
    net.set_tamper(nullptr);

    // Every drop is attributed to exactly one reason.
    std::uint64_t by_reason = 0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(obs::DropReason::kCount_); ++i) {
        by_reason += net.dropped_for(static_cast<obs::DropReason>(i));
    }
    EXPECT_EQ(by_reason, net.packets_dropped());
    EXPECT_EQ(net.packets_dropped(), 5u);
    EXPECT_EQ(net.packets_sent(), 5u);
    EXPECT_EQ(net.packets_delivered(), 0u);
}

TEST_F(NetworkTest, ReceiverDownMidFlightAttributedAtArrival) {
    net.send(1, 2, to_bytes("x"));
    sim.run_until(500);
    net.set_node_down(2, true);
    sim.run();
    EXPECT_EQ(net.dropped_for(obs::DropReason::kReceiverDown), 1u);
    EXPECT_EQ(net.packets_delivered(), 0u);
}

TEST_F(NetworkTest, TransitTimeAccumulatesPerDelivery) {
    net.send(1, 2, Bytes(10, 0));
    net.send(1, 3, Bytes(10, 0));
    sim.run();
    // Zero jitter / zero ns_per_byte fixture: each delivery spent exactly
    // the link latency in flight.
    EXPECT_EQ(net.transit_time(), 2000);
    net.reset_counters();
    EXPECT_EQ(net.transit_time(), 0);
}

TEST_F(NetworkTest, RegisterMetricsPublishesCountersAndDropReasons) {
    obs::Registry reg;
    net.register_metrics(reg, "net");

    net.block(1, 2);
    net.send(1, 2, to_bytes("x"));  // dropped: partitioned
    net.send(1, 3, to_bytes("y"));  // delivered
    sim.run();

    auto snap = reg.snapshot();
    EXPECT_EQ(snap.at("net.packets_sent"), 2.0);
    EXPECT_EQ(snap.at("net.packets_delivered"), 1.0);
    EXPECT_EQ(snap.at("net.packets_dropped"), 1.0);
    EXPECT_EQ(snap.at("net.drops.partitioned"), 1.0);
    EXPECT_EQ(snap.at("net.delivered_to.3"), 1.0);
    // Zero-valued drop reasons are omitted from the dump.
    EXPECT_FALSE(snap.contains("net.drops.link_loss"));
}

TEST_F(NetworkTest, TraceRecordsDropReason) {
    obs::TraceSink sink;
    sim.set_trace(&sink);
    net.set_global_drop_rate(1.0);
    net.send(1, 2, to_bytes("x"));
    sim.run();
    sim.set_trace(nullptr);

    ASSERT_EQ(sink.size(), 1u);
    const obs::TraceEvent& e = sink.events()[0];
    EXPECT_EQ(e.kind, obs::EventKind::kPacketDrop);
    EXPECT_EQ(e.node, 1u);
    EXPECT_STREQ(e.label, obs::drop_reason_name(obs::DropReason::kLinkLoss));
}

}  // namespace
}  // namespace neo::sim
