// Parallel-engine determinism: the conservative PDES drain must realise the
// exact event order of the serial engine — same node state, same network
// counters, same trace bytes — for any partition count. The workload here is
// a token ring with random jitter, drops and a Byzantine tamper hook, so
// every per-sender RNG stream and every mailbox path is exercised. Runs
// under the `tsan` label: it is the densest cross-partition traffic the
// suite generates.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace neo::sim {
namespace {

// Forwards a token around the ring until its hop budget runs out; folds
// (arrival time, sender, payload) into a checksum only this node touches.
class RingNode : public Node {
  public:
    void configure(Network* net, NodeId next) {
        net_ = net;
        next_ = next;
    }

    void on_packet(NodeId from, const Packet& pkt) override {
        BytesView data = pkt.view();
        ++received;
        checksum = checksum * 1099511628211ull + static_cast<std::uint64_t>(sim().now());
        checksum = checksum * 1099511628211ull + from;
        for (std::uint8_t b : data) checksum = checksum * 1099511628211ull + b;
        if (data.empty() || data[0] == 0) return;
        Bytes fwd(data.begin(), data.end());
        fwd[0] -= 1;
        net_->send(id(), next_, Packet{std::move(fwd)});
    }

    std::uint64_t received = 0;
    std::uint64_t checksum = 1469598103934665603ull;

  private:
    Network* net_ = nullptr;
    NodeId next_ = 0;
};

struct Scenario {
    unsigned threads = 1;
    int ring = 7;  // deliberately not a multiple of the partition counts
    double drop_rate = 0.0;
    bool tamper = false;
    Time latency = 2 * kMicrosecond;
    Time jitter = 1 * kMicrosecond;
    std::uint64_t seed = 42;
    Time horizon = 20 * kMillisecond;
    Time step = 0;  // 0 = one run_until; else advance in increments
};

struct Fingerprint {
    std::vector<std::uint64_t> received;
    std::vector<std::uint64_t> checksums;
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t executed = 0;
    std::string trace;

    friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint run_ring(const Scenario& sc) {
    Simulator sim(sc.threads);
    obs::TraceSink sink;
    sim.set_trace(&sink);
    Network net(sim, sc.seed);
    LinkConfig link;
    link.latency = sc.latency;
    link.jitter = sc.jitter;
    net.set_default_link(link);
    net.set_global_drop_rate(sc.drop_rate);
    if (sc.tamper) {
        // Deterministic Byzantine hook: corrupt the tail byte of every
        // fifth packet (never byte 0, which carries the hop budget).
        net.set_tamper([](NodeId from, NodeId to, Bytes& data) {
            if ((from + to + data.size()) % 5 == 0 && data.size() > 1) {
                data.back() ^= 0x5a;
            }
            return TamperAction::kDeliver;
        });
    }

    std::vector<RingNode> nodes(static_cast<std::size_t>(sc.ring));
    for (int i = 0; i < sc.ring; ++i) {
        net.add_node(nodes[static_cast<std::size_t>(i)], static_cast<NodeId>(i));
    }
    for (int i = 0; i < sc.ring; ++i) {
        nodes[static_cast<std::size_t>(i)].configure(&net,
                                                     static_cast<NodeId>((i + 1) % sc.ring));
    }
    // Several concurrent tokens per node: byte 0 is the hop budget, the rest
    // is ballast the tamper hook can chew on.
    for (int i = 0; i < sc.ring; ++i) {
        for (int k = 0; k < 4; ++k) {
            Bytes token(16, static_cast<std::uint8_t>(i * 16 + k));
            token[0] = 200;
            net.send(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % sc.ring),
                     Packet{std::move(token)});
        }
    }

    if (sc.step > 0) {
        for (Time t = sc.step; t <= sc.horizon; t += sc.step) sim.run_until(t);
    }
    sim.run_until(sc.horizon);

    Fingerprint fp;
    for (const auto& n : nodes) {
        fp.received.push_back(n.received);
        fp.checksums.push_back(n.checksum);
    }
    fp.packets_sent = net.packets_sent();
    fp.packets_delivered = net.packets_delivered();
    fp.packets_dropped = net.packets_dropped();
    fp.executed = sim.executed_events();
    std::ostringstream os;
    sink.write_jsonl(os);
    fp.trace = os.str();
    return fp;
}

Scenario base() { return Scenario{}; }

TEST(PdesEngine, CleanRingIdenticalAcrossThreadCounts) {
    Scenario sc = base();
    Fingerprint serial = run_ring(sc);
    ASSERT_GT(serial.packets_delivered, 0u);
    ASSERT_FALSE(serial.trace.empty());
    for (unsigned threads : {2u, 3u, 8u}) {
        sc.threads = threads;
        EXPECT_EQ(serial, run_ring(sc)) << "threads=" << threads;
    }
}

TEST(PdesEngine, DropsAndTamperIdenticalAcrossThreadCounts) {
    Scenario sc = base();
    sc.drop_rate = 0.02;
    sc.tamper = true;
    sc.seed = 1234;
    Fingerprint serial = run_ring(sc);
    ASSERT_GT(serial.packets_dropped, 0u);
    for (unsigned threads : {2u, 8u}) {
        sc.threads = threads;
        EXPECT_EQ(serial, run_ring(sc)) << "threads=" << threads;
    }
}

TEST(PdesEngine, IncrementalRunUntilMatchesOneShot) {
    // Chopping virtual time into odd-sized slices parks events in the
    // carry-parity mailboxes across run_limit calls; results must not move.
    Scenario sc = base();
    sc.drop_rate = 0.01;
    sc.threads = 4;
    Fingerprint oneshot = run_ring(sc);
    sc.step = 777 * kMicrosecond;  // not window-aligned
    EXPECT_EQ(oneshot, run_ring(sc));
    sc.threads = 1;
    EXPECT_EQ(oneshot, run_ring(sc));
}

TEST(PdesEngine, ZeroLookaheadFallsBackToSerialEngine) {
    // Zero-latency links give the conservative engine no lookahead; a
    // multi-partition simulator must quietly run the serial drain and still
    // match Simulator(1) exactly.
    Scenario sc = base();
    sc.latency = 0;
    sc.jitter = 0;
    Fingerprint serial = run_ring(sc);
    sc.threads = 8;
    EXPECT_EQ(serial, run_ring(sc));
}

TEST(PdesEngine, DifferentSeedsDiverge) {
    // The identity checks above are not vacuous: seeds steer jitter/drops.
    Scenario a = base();
    a.drop_rate = 0.02;
    Scenario b = a;
    b.seed = a.seed + 1;
    EXPECT_NE(run_ring(a), run_ring(b));
}

TEST(PdesEngine, GlobalEventsSeeQuiescedPartitions) {
    // at_global runs with every worker parked between windows: it must
    // observe all node events with t <= its own time, on any engine.
    for (unsigned threads : {1u, 4u}) {
        Simulator sim(threads);
        sim.set_lookahead(10);
        std::uint64_t before_mid = 0;
        // One event per virtual-time tick on each of 4 lanes for 100 ticks.
        for (NodeId n = 0; n < 4; ++n) {
            for (Time t = 1; t <= 100; ++t) sim.at_node(t, n, [] {});
        }
        sim.at_global(50, [&] { before_mid = sim.executed_events(); });
        sim.run();
        // All 4 * 50 node events at t <= 50 ran before the global (the
        // count includes the observing global itself).
        EXPECT_EQ(before_mid, 201u) << "threads=" << threads;
        EXPECT_EQ(sim.executed_events(), 401u) << "threads=" << threads;
    }
}

TEST(PdesEngine, NodeScheduledGlobalsRunAndReconfigure) {
    // A node event may hand cross-cutting work to a global (>= lookahead
    // ahead); the global runs between windows and may touch any partition's
    // state — here a shared counter no node event could safely own.
    for (unsigned threads : {1u, 4u}) {
        Simulator sim(threads);
        sim.set_lookahead(10);
        std::uint64_t shared = 0;
        for (NodeId n = 0; n < 4; ++n) {
            sim.at_node(5, n, [&sim, &shared] {
                sim.at_global(sim.now() + 10, [&shared] { ++shared; });
            });
        }
        sim.run();
        EXPECT_EQ(shared, 4u) << "threads=" << threads;
    }
}

}  // namespace
}  // namespace neo::sim
