#include "sim/processing_node.hpp"

#include <gtest/gtest.h>

#include "common/codec.hpp"

namespace neo::sim {
namespace {

// Echoes every packet back to its sender; optionally charges extra cost.
class EchoNode : public ProcessingNode {
  public:
    explicit EchoNode(ProcessingConfig cfg = {}) : ProcessingNode(cfg) {}
    Time extra_cost = 0;
    int handled = 0;

    void handle(NodeId from, BytesView data) override {
        ++handled;
        charge(extra_cost);
        send_to(from, Bytes(data.begin(), data.end()));
    }

    using ProcessingNode::cancel_timer;
    using ProcessingNode::set_meter;
    using ProcessingNode::set_timer;
};

class SinkNode : public Node {
  public:
    std::vector<Time> arrivals;
    void on_packet(NodeId, const Packet&) override { arrivals.push_back(sim().now()); }
};

class ProcessingNodeTest : public ::testing::Test {
  protected:
    ProcessingNodeTest() : net(sim, 3) {
        LinkConfig cfg;
        cfg.latency = 1000;
        cfg.jitter = 0;
        cfg.ns_per_byte = 0;
        net.set_default_link(cfg);

        ProcessingConfig pc;
        pc.recv_overhead_ns = 100;
        pc.send_overhead_ns = 50;
        pc.timer_overhead_ns = 10;
        pc.io_ns_per_byte = 0;  // keep the exact-timing assertions size-free
        echo.set_processing_config(pc);
        net.add_node(echo, 1);
        net.add_node(sink, 2);
    }

    Simulator sim;
    Network net;
    EchoNode echo;
    SinkNode sink;
};

TEST_F(ProcessingNodeTest, EchoTiming) {
    // send at 0, arrive at 1000, processing 100 (recv) + 50 (send),
    // reply departs 1150, arrives 2150.
    net.send(2, 1, to_bytes("ping"));
    sim.run();
    ASSERT_EQ(sink.arrivals.size(), 1u);
    EXPECT_EQ(sink.arrivals[0], 2150);
}

TEST_F(ProcessingNodeTest, QueueingDelaysBackToBackMessages) {
    echo.extra_cost = 1000;  // each message takes 1150ns of CPU
    net.send(2, 1, to_bytes("a"));
    net.send(2, 1, to_bytes("b"));
    sim.run();
    ASSERT_EQ(sink.arrivals.size(), 2u);
    // First: arrive 1000, busy until 2150, reply arrives 3150.
    EXPECT_EQ(sink.arrivals[0], 3150);
    // Second: arrives 1000 but waits until 2150, done 3300, arrives 4300.
    EXPECT_EQ(sink.arrivals[1], 4300);
}

TEST_F(ProcessingNodeTest, ThroughputLimitedByServiceTime) {
    echo.extra_cost = 10'000;
    for (int i = 0; i < 100; ++i) net.send(2, 1, to_bytes("x"));
    sim.run();
    EXPECT_EQ(echo.handled, 100);
    // 100 messages x ~10.15us service => last reply no earlier than ~1ms.
    EXPECT_GE(sink.arrivals.back(), 100 * 10'000);
}

TEST_F(ProcessingNodeTest, BusyTimeAccumulates) {
    net.send(2, 1, to_bytes("a"));
    net.send(2, 1, to_bytes("b"));
    sim.run();
    EXPECT_EQ(echo.busy_time(), 2 * (100 + 50));
    EXPECT_EQ(echo.messages_handled(), 2u);
}

TEST_F(ProcessingNodeTest, MeterSyncCostExtendsBusyTime) {
    class MeteredNode : public ProcessingNode {
      public:
        crypto::CostMeter meter;
        MeteredNode() {
            ProcessingConfig pc;
            pc.recv_overhead_ns = 100;
            pc.send_overhead_ns = 0;
            pc.io_ns_per_byte = 0;
            set_processing_config(pc);
            set_meter(&meter);
        }
        void handle(NodeId from, BytesView) override {
            meter.charge(5'000);
            send_to(from, to_bytes("r"));
        }
    };
    MeteredNode metered;
    net.add_node(metered, 4);
    net.send(2, 4, to_bytes("q"));
    sim.run();
    EXPECT_EQ(metered.busy_time(), 5'100);
    ASSERT_EQ(sink.arrivals.size(), 1u);
    EXPECT_EQ(sink.arrivals[0], 1000 + 5'100 + 1000);
}

TEST_F(ProcessingNodeTest, AsyncCostDelaysOutputNotCpu) {
    class AsyncNode : public ProcessingNode {
      public:
        crypto::CostMeter meter;
        AsyncNode() {
            ProcessingConfig pc;
            pc.recv_overhead_ns = 100;
            pc.send_overhead_ns = 0;
            pc.io_ns_per_byte = 0;
            set_processing_config(pc);
            set_meter(&meter);
        }
        void handle(NodeId from, BytesView) override {
            meter.charge_async(10'000);
            send_to(from, to_bytes("r"));
        }
    };
    AsyncNode async_node;
    net.add_node(async_node, 5);
    net.send(2, 5, to_bytes("q"));
    net.send(2, 5, to_bytes("q2"));
    sim.run();
    ASSERT_EQ(sink.arrivals.size(), 2u);
    // First reply: arrive 1000 + 100 sync + 10000 async + 1000 link = 12100.
    EXPECT_EQ(sink.arrivals[0], 12'100);
    // Second message processed right after the first's sync window (CPU free
    // at 1100), NOT after the async completes.
    EXPECT_EQ(sink.arrivals[1], 12'200);
}

TEST_F(ProcessingNodeTest, TimerFiresThroughCostMachinery) {
    std::vector<Time> fired;
    echo.set_timer(700, [&] { fired.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], 700);
    EXPECT_EQ(echo.busy_time(), 10);  // timer overhead
}

TEST_F(ProcessingNodeTest, CancelledTimerDoesNotFire) {
    bool fired = false;
    auto tid = echo.set_timer(700, [&] { fired = true; });
    echo.cancel_timer(tid);
    sim.run();
    EXPECT_FALSE(fired);
}

TEST_F(ProcessingNodeTest, TimerWaitsBehindBusyCpu) {
    echo.extra_cost = 10'000;
    std::vector<Time> fired;
    net.send(2, 1, to_bytes("work"));  // arrives 1000, busy until 11150
    echo.set_timer(1500, [&] { fired.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], 11'150);
}

TEST_F(ProcessingNodeTest, TimerOnDownNodeDoesNotFire) {
    bool fired = false;
    echo.set_timer(500, [&] { fired = true; });
    net.set_node_down(1, true);
    sim.run();
    EXPECT_FALSE(fired);
}

TEST_F(ProcessingNodeTest, SendOutsideTaskGoesImmediately) {
    class InitSender : public ProcessingNode {
      public:
        void handle(NodeId, BytesView) override {}
        void poke(NodeId to) { send_to(to, to_bytes("init")); }
    };
    InitSender init;
    net.add_node(init, 7);
    sim.at(100, [&] { init.poke(2); });
    sim.run();
    ASSERT_EQ(sink.arrivals.size(), 1u);
    EXPECT_EQ(sink.arrivals[0], 1100);
}

TEST_F(ProcessingNodeTest, BroadcastCountsPerDestinationSendCost) {
    class Broadcaster : public ProcessingNode {
      public:
        Broadcaster() {
            ProcessingConfig pc;
            pc.recv_overhead_ns = 100;
            pc.send_overhead_ns = 50;
            pc.io_ns_per_byte = 0;
            set_processing_config(pc);
        }
        void handle(NodeId, BytesView) override { broadcast({2, 8, 9}, to_bytes("b")); }
    };
    Broadcaster bc;
    SinkNode s8, s9;
    net.add_node(bc, 6);
    net.add_node(s8, 8);
    net.add_node(s9, 9);
    net.send(2, 6, to_bytes("go"));
    sim.run();
    // 100 recv + 3x50 send = 250 busy.
    EXPECT_EQ(bc.busy_time(), 250);
    EXPECT_EQ(sink.arrivals.size(), 1u);
    EXPECT_EQ(s8.arrivals.size(), 1u);
    EXPECT_EQ(s9.arrivals.size(), 1u);
}

}  // namespace
}  // namespace neo::sim
