#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace neo::sim {
namespace {

TEST(Simulator, StartsAtZero) {
    Simulator s;
    EXPECT_EQ(s.now(), 0);
    EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
    Simulator s;
    std::vector<int> order;
    s.at(30, [&] { order.push_back(3); });
    s.at(10, [&] { order.push_back(1); });
    s.at(20, [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, SameTimestampFifoOrder) {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) s.at(5, [&order, i] { order.push_back(i); });
    s.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, AfterSchedulesRelative) {
    Simulator s;
    Time fired = -1;
    s.at(100, [&] { s.after(50, [&] { fired = s.now(); }); });
    s.run();
    EXPECT_EQ(fired, 150);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
    Simulator s;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5) s.after(10, chain);
    };
    s.after(10, chain);
    s.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(s.now(), 50);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
    Simulator s;
    int fired = 0;
    s.at(10, [&] { ++fired; });
    s.at(20, [&] { ++fired; });
    s.at(30, [&] { ++fired; });
    s.run_until(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(s.now(), 20);
    EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
    Simulator s;
    s.run_until(1000);
    EXPECT_EQ(s.now(), 1000);
}

TEST(Simulator, EventAtBoundaryIncluded) {
    Simulator s;
    bool fired = false;
    s.at(100, [&] { fired = true; });
    s.run_until(100);
    EXPECT_TRUE(fired);
}

TEST(Simulator, StopHaltsRun) {
    Simulator s;
    int fired = 0;
    s.at(1, [&] {
        ++fired;
        s.stop();
    });
    s.at(2, [&] { ++fired; });
    s.run();
    EXPECT_EQ(fired, 1);
    // A subsequent run resumes.
    s.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
    Simulator s;
    EXPECT_FALSE(s.step());
    s.at(0, [] {});
    EXPECT_TRUE(s.step());
    EXPECT_FALSE(s.step());
}

TEST(Simulator, ExecutedEventsCounter) {
    Simulator s;
    for (int i = 0; i < 7; ++i) s.at(i, [] {});
    s.run();
    EXPECT_EQ(s.executed_events(), 7u);
}

TEST(SimulatorDeath, SchedulingInPastAborts) {
    Simulator s;
    s.at(100, [] {});
    s.step();
    EXPECT_DEATH(s.at(50, [] {}), "cannot schedule an event in the past");
}

}  // namespace
}  // namespace neo::sim
