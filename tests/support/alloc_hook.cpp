#include "support/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace neo::test_alloc {
namespace {

std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::uint64_t> g_over{0};
std::atomic<std::size_t> g_threshold{SIZE_MAX};

void record(std::size_t size) {
    g_count.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
    if (size >= g_threshold.load(std::memory_order_relaxed)) {
        g_over.fetch_add(1, std::memory_order_relaxed);
    }
}

void* counted_alloc(std::size_t size) {
    record(size);
    return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
    record(size);
    void* p = nullptr;
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, size ? size : 1) != 0) {
        return nullptr;
    }
    return p;
}

}  // namespace

Stats snapshot() {
    Stats s;
    s.count = g_count.load(std::memory_order_relaxed);
    s.bytes = g_bytes.load(std::memory_order_relaxed);
    s.over_threshold = g_over.load(std::memory_order_relaxed);
    return s;
}

void set_threshold(std::size_t bytes) { g_threshold.store(bytes, std::memory_order_relaxed); }

std::size_t threshold() { return g_threshold.load(std::memory_order_relaxed); }

bool hook_active() { return true; }

}  // namespace neo::test_alloc

// ---- global operator new/delete interposition (this binary only) ----

void* operator new(std::size_t size) {
    void* p = neo::test_alloc::counted_alloc(size);
    if (!p) throw std::bad_alloc();
    return p;
}

void* operator new[](std::size_t size) {
    void* p = neo::test_alloc::counted_alloc(size);
    if (!p) throw std::bad_alloc();
    return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return neo::test_alloc::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return neo::test_alloc::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
    void* p = neo::test_alloc::counted_aligned_alloc(size, static_cast<std::size_t>(align));
    if (!p) throw std::bad_alloc();
    return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
    void* p = neo::test_alloc::counted_aligned_alloc(size, static_cast<std::size_t>(align));
    if (!p) throw std::bad_alloc();
    return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
