// Allocation-counting test hook.
//
// Linking alloc_hook.cpp into a test binary replaces the global operator
// new/delete with a counting interposer (per-binary: only binaries that
// list alloc_hook.cpp in their sources are affected). Tests snapshot the
// counters around a measured region and assert on the delta — e.g. that a
// 64-way multicast performs exactly one payload-sized allocation.
//
// Counters are atomics with relaxed ordering: cheap enough to leave always
// on, and safe under the thread-pool tests' concurrent simulators.
#pragma once

#include <cstddef>
#include <cstdint>

namespace neo::test_alloc {

struct Stats {
    std::uint64_t count = 0;           // operator-new calls
    std::uint64_t bytes = 0;           // total requested bytes
    std::uint64_t over_threshold = 0;  // calls with size >= threshold()
};

/// Current totals since process start.
Stats snapshot();

/// Size classifying an allocation as "payload-sized" for
/// Stats::over_threshold. Set it BEFORE taking the base snapshot; counts
/// taken under different thresholds are not comparable.
void set_threshold(std::size_t bytes);
std::size_t threshold();

/// True iff the interposer is linked into this binary (always true when
/// this header's implementation is; exists so a helper library could probe).
bool hook_active();

}  // namespace neo::test_alloc
